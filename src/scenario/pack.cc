#include "scenario/pack.h"

#include <algorithm>
#include <charconv>

#include "util/time.h"

namespace blameit::scenario {

namespace {

using util::json::Value;

constexpr std::string_view kRegionTokens[] = {
    "usa", "europe", "india", "china", "brazil", "australia", "east_asia"};

constexpr std::string_view kIncidentTypeTokens[] = {
    "cloud_location", "middle_as",  "client_as",     "client_block",
    "resteer",        "bgp_hijack", "bgp_path_leak", "bgp_flap_storm"};

constexpr std::string_view kModeTokens[] = {"aggregates", "records"};

std::string join(const std::string_view* tokens, std::size_t n) {
  std::string out;
  for (std::size_t i = 0; i < n; ++i) {
    if (i) out += ", ";
    out += tokens[i];
  }
  return out;
}

/// Validation context: knows the source name so every error can point at
/// file:line:column plus the JSON path of the offending value.
struct Ctx {
  std::string source;

  [[noreturn]] void fail(const Value& at, const std::string& path,
                         const std::string& what) const {
    throw PackError{source + ":" + std::to_string(at.line()) + ":" +
                    std::to_string(at.column()) + ": " + path + ": " + what};
  }

  const Value& require(const Value& obj, const std::string& path,
                       std::string_view key) const {
    const Value* v = obj.find(key);
    if (!v) {
      fail(obj, path, "missing required member \"" + std::string{key} + "\"");
    }
    return *v;
  }

  /// Rejects members outside `allowed` — a typo'd optional key would
  /// otherwise be silently ignored, which is the worst failure mode for a
  /// hand-edited file.
  void check_keys(const Value& obj, const std::string& path,
                  std::initializer_list<std::string_view> allowed) const {
    for (const auto& [key, value] : obj.members()) {
      if (std::find(allowed.begin(), allowed.end(), key) == allowed.end()) {
        fail(value, path + "." + key,
             "unknown member (allowed: " +
                 join(allowed.begin(), allowed.size()) + ")");
      }
    }
  }

  const Value& want_object(const Value& v, const std::string& path) const {
    if (!v.is_object()) {
      fail(v, path, "expected an object, got " + std::string{v.type_name()});
    }
    return v;
  }

  std::int64_t want_int(const Value& v, const std::string& path) const {
    if (!v.is_number() || !v.is_integer()) {
      fail(v, path, "expected an integer, got " + std::string{v.type_name()});
    }
    return v.as_integer();
  }

  std::int64_t want_int_in(const Value& v, const std::string& path,
                           std::int64_t lo, std::int64_t hi) const {
    const auto n = want_int(v, path);
    if (n < lo || n > hi) {
      fail(v, path,
           "value " + std::to_string(n) + " out of range [" +
               std::to_string(lo) + ", " + std::to_string(hi) + "]");
    }
    return n;
  }

  bool want_bool(const Value& v, const std::string& path) const {
    if (!v.is_bool()) {
      fail(v, path, "expected a boolean, got " + std::string{v.type_name()});
    }
    return v.as_bool();
  }

  double want_number(const Value& v, const std::string& path) const {
    if (!v.is_number()) {
      fail(v, path, "expected a number, got " + std::string{v.type_name()});
    }
    return v.as_number();
  }

  const std::string& want_string(const Value& v, const std::string& path)
      const {
    if (!v.is_string()) {
      fail(v, path, "expected a string, got " + std::string{v.type_name()});
    }
    return v.as_string();
  }

  net::Region want_region(const Value& v, const std::string& path) const {
    const auto& token = want_string(v, path);
    const auto region = parse_region_token(token);
    if (!region) {
      fail(v, path,
           "unknown region \"" + token + "\" (allowed: " +
               join(kRegionTokens, std::size(kRegionTokens)) + ")");
    }
    return *region;
  }

  /// Times are either an integer minute count or "DdHH:MM" (day, 24h clock),
  /// e.g. "3d08:15" = day 3, 08:15.
  util::MinuteTime want_time(const Value& v, const std::string& path) const {
    if (v.is_number()) {
      return util::MinuteTime{want_int_in(v, path, 0, 1'000'000'000)};
    }
    if (!v.is_string()) {
      fail(v, path,
           "expected a time (integer minutes or \"DdHH:MM\", e.g. "
           "\"3d08:15\"), got " +
               std::string{v.type_name()});
    }
    const std::string& s = v.as_string();
    const auto bad = [&]() -> util::MinuteTime {
      fail(v, path,
           "malformed time \"" + s +
               "\" (want integer minutes or \"DdHH:MM\", e.g. \"3d08:15\")");
    };
    const auto d_pos = s.find('d');
    const auto colon = s.find(':');
    if (d_pos == std::string::npos || colon == std::string::npos ||
        colon < d_pos) {
      return bad();
    }
    int day = 0;
    int hour = 0;
    int minute = 0;
    const auto parse_int = [&](std::size_t from, std::size_t to, int& out,
                               int lo, int hi) {
      const auto [ptr, ec] =
          std::from_chars(s.data() + from, s.data() + to, out);
      return ec == std::errc{} && ptr == s.data() + to && out >= lo &&
             out <= hi;
    };
    if (!parse_int(0, d_pos, day, 0, 100000) ||
        !parse_int(d_pos + 1, colon, hour, 0, 23) ||
        !parse_int(colon + 1, s.size(), minute, 0, 59)) {
      return bad();
    }
    return util::MinuteTime::from_days(day).plus_minutes(hour * 60 + minute);
  }
};

FeedMode parse_mode(const Ctx& ctx, const Value& v, const std::string& path) {
  const auto& token = ctx.want_string(v, path);
  if (token == "aggregates") return FeedMode::Aggregates;
  if (token == "records") return FeedMode::Records;
  ctx.fail(v, path,
           "unknown mode \"" + token + "\" (allowed: " +
               join(kModeTokens, std::size(kModeTokens)) + ")");
}

IncidentType parse_incident_type(const Ctx& ctx, const Value& v,
                                 const std::string& path) {
  const auto& token = ctx.want_string(v, path);
  for (std::size_t i = 0; i < std::size(kIncidentTypeTokens); ++i) {
    if (token == kIncidentTypeTokens[i]) {
      return static_cast<IncidentType>(i);
    }
  }
  ctx.fail(v, path,
           "unknown incident type \"" + token + "\" (allowed: " +
               join(kIncidentTypeTokens, std::size(kIncidentTypeTokens)) +
               ")");
}

void parse_topology(const Ctx& ctx, const Value& v, const std::string& path,
                    net::TopologyConfig& out) {
  ctx.want_object(v, path);
  ctx.check_keys(v, path,
                 {"seed", "locations_per_region", "transits_per_region",
                  "eyeballs_per_region", "metros_per_region",
                  "blocks_per_eyeball", "blocks_per_prefix", "alternates"});
  if (const auto* m = v.find("seed")) {
    out.seed = static_cast<std::uint64_t>(
        ctx.want_int_in(*m, path + ".seed", 0, INT64_MAX));
  }
  const auto opt_int = [&](std::string_view key, int& field, int lo, int hi) {
    if (const auto* m = v.find(key)) {
      field = static_cast<int>(
          ctx.want_int_in(*m, path + "." + std::string{key}, lo, hi));
    }
  };
  opt_int("locations_per_region", out.locations_per_region, 1, 16);
  opt_int("transits_per_region", out.transits_per_region, 1, 64);
  opt_int("eyeballs_per_region", out.eyeballs_per_region, 1, 64);
  opt_int("metros_per_region", out.metros_per_region, 1, 64);
  opt_int("blocks_per_eyeball", out.blocks_per_eyeball, 1, 256);
  opt_int("blocks_per_prefix", out.blocks_per_prefix, 1, 64);
  opt_int("alternates", out.alternates, 1, 16);
}

void parse_pipeline(const Ctx& ctx, const Value& v, const std::string& path,
                    core::BlameItConfig& out) {
  ctx.want_object(v, path);
  ctx.check_keys(v, path,
                 {"analytics_threads", "expected_rtt_window_days",
                  "probe_budget_per_run", "active_quorum_k",
                  "active_probe_retries", "state_backend",
                  "churn_baseline_transfer", "churn_transfer_discount",
                  "churn_transfer_max_age_days", "churn_steer_shield",
                  "churn_shield_minutes", "probe_on_no_baseline"});
  const auto opt_int = [&](std::string_view key, int& field, int lo, int hi) {
    if (const auto* m = v.find(key)) {
      field = static_cast<int>(
          ctx.want_int_in(*m, path + "." + std::string{key}, lo, hi));
    }
  };
  const auto opt_bool = [&](std::string_view key, bool& field) {
    if (const auto* m = v.find(key)) {
      field = ctx.want_bool(*m, path + "." + std::string{key});
    }
  };
  opt_int("analytics_threads", out.analytics_threads, 0, 64);
  opt_int("expected_rtt_window_days", out.expected_rtt_window_days, 1, 30);
  opt_int("probe_budget_per_run", out.probe_budget_per_run, 0, 1000);
  opt_int("active_quorum_k", out.active_quorum_k, 1, 9);
  opt_int("active_probe_retries", out.active_probe_retries, 0, 10);
  opt_bool("churn_baseline_transfer", out.churn_baseline_transfer);
  if (const auto* m = v.find("churn_transfer_discount")) {
    const std::string p = path + ".churn_transfer_discount";
    out.churn_transfer_discount = ctx.want_number(*m, p);
    if (out.churn_transfer_discount < 1.0 ||
        out.churn_transfer_discount > 4.0) {
      ctx.fail(*m, p, "discount must be in [1, 4]");
    }
  }
  opt_int("churn_transfer_max_age_days", out.churn_transfer_max_age_days, 1,
          30);
  opt_bool("churn_steer_shield", out.churn_steer_shield);
  opt_int("churn_shield_minutes", out.churn_shield_minutes, 1, 7 * 24 * 60);
  opt_bool("probe_on_no_baseline", out.probe_on_no_baseline);
  if (const auto* m = v.find("state_backend")) {
    const std::string p = path + ".state_backend";
    const auto& token = ctx.want_string(*m, p);
    if (token == "hashmap") {
      out.state_backend = store::StateBackend::kHashMap;
    } else if (token == "columnar") {
      out.state_backend = store::StateBackend::kColumnar;
    } else {
      ctx.fail(*m, p,
               "unknown state backend \"" + token +
                   "\" (allowed: hashmap, columnar)");
    }
  }
}

void parse_ingest(const Ctx& ctx, const Value& v, const std::string& path,
                  ingest::IngestConfig& out) {
  ctx.want_object(v, path);
  ctx.check_keys(v, path, {"shards", "batch_records", "queue_batches",
                           "lateness_minutes"});
  if (const auto* m = v.find("shards")) {
    out.shards =
        static_cast<int>(ctx.want_int_in(*m, path + ".shards", 1, 64));
  }
  if (const auto* m = v.find("batch_records")) {
    out.batch_records = static_cast<std::size_t>(
        ctx.want_int_in(*m, path + ".batch_records", 1, 1 << 20));
  }
  if (const auto* m = v.find("queue_batches")) {
    out.queue_batches = static_cast<std::size_t>(
        ctx.want_int_in(*m, path + ".queue_batches", 1, 1 << 20));
  }
  if (const auto* m = v.find("lateness_minutes")) {
    out.lateness_minutes = static_cast<int>(
        ctx.want_int_in(*m, path + ".lateness_minutes", 0, 24 * 60));
  }
}

void parse_chaos(const Ctx& ctx, const Value& v, const std::string& path,
                 sim::ChaosConfig& out) {
  ctx.want_object(v, path);
  ctx.check_keys(v, path,
                 {"seed", "probe_loss_rate", "hop_timeout_rate",
                  "silent_as_rate", "duplicate_record_rate",
                  "late_record_rate", "late_record_delay_buckets",
                  "churn_feed_loss_rate", "churn_feed_delay_rate",
                  "churn_feed_delay_minutes", "outages"});
  if (const auto* m = v.find("seed")) {
    out.seed = static_cast<std::uint64_t>(
        ctx.want_int_in(*m, path + ".seed", 0, INT64_MAX));
  }
  const auto opt_rate = [&](std::string_view key, double& field) {
    if (const auto* m = v.find(key)) {
      const std::string p = path + "." + std::string{key};
      field = ctx.want_number(*m, p);
      if (field < 0.0 || field > 1.0) {
        ctx.fail(*m, p, "rate must be in [0, 1]");
      }
    }
  };
  opt_rate("probe_loss_rate", out.probe_loss_rate);
  opt_rate("hop_timeout_rate", out.hop_timeout_rate);
  opt_rate("silent_as_rate", out.silent_as_rate);
  opt_rate("duplicate_record_rate", out.duplicate_record_rate);
  opt_rate("late_record_rate", out.late_record_rate);
  opt_rate("churn_feed_loss_rate", out.churn_feed_loss_rate);
  opt_rate("churn_feed_delay_rate", out.churn_feed_delay_rate);
  if (const auto* m = v.find("churn_feed_delay_minutes")) {
    out.churn_feed_delay_minutes = static_cast<int>(
        ctx.want_int_in(*m, path + ".churn_feed_delay_minutes", 1, 24 * 60));
  }
  if (const auto* m = v.find("late_record_delay_buckets")) {
    out.late_record_delay_buckets = static_cast<int>(
        ctx.want_int_in(*m, path + ".late_record_delay_buckets", 1, 288));
  }
  if (const auto* m = v.find("outages")) {
    const std::string p = path + ".outages";
    if (!m->is_array()) {
      ctx.fail(*m, p,
               "expected an array, got " + std::string{m->type_name()});
    }
    for (std::size_t i = 0; i < m->items().size(); ++i) {
      const auto& o = m->items()[i];
      const std::string op = p + "[" + std::to_string(i) + "]";
      ctx.want_object(o, op);
      ctx.check_keys(o, op, {"start", "duration_minutes"});
      sim::OutageWindow w;
      w.start = ctx.want_time(ctx.require(o, op, "start"), op + ".start");
      w.duration_minutes = static_cast<int>(ctx.want_int_in(
          ctx.require(o, op, "duration_minutes"), op + ".duration_minutes",
          1, 7 * 24 * 60));
      out.outages.push_back(w);
    }
  }
}

PackSurge parse_surge(const Ctx& ctx, const Value& v,
                      const std::string& path) {
  ctx.want_object(v, path);
  ctx.check_keys(v, path,
                 {"start", "duration_minutes", "region", "multiplier"});
  PackSurge s;
  s.start = ctx.want_time(ctx.require(v, path, "start"), path + ".start");
  s.duration_minutes = static_cast<int>(ctx.want_int_in(
      ctx.require(v, path, "duration_minutes"), path + ".duration_minutes",
      1, 30 * 24 * 60));
  s.region = ctx.want_region(ctx.require(v, path, "region"), path + ".region");
  const auto& mult = ctx.require(v, path, "multiplier");
  s.multiplier = ctx.want_number(mult, path + ".multiplier");
  if (s.multiplier <= 0.0 || s.multiplier > 1000.0) {
    ctx.fail(mult, path + ".multiplier", "multiplier must be in (0, 1000]");
  }
  return s;
}

PackIncident parse_incident(const Ctx& ctx, const Value& v,
                            const std::string& path) {
  ctx.want_object(v, path);
  ctx.check_keys(
      v, path,
      {"name", "type", "region", "start", "duration_minutes", "added_ms",
       "location_index", "transit_index", "eyeball_index", "block_index",
       "to_region", "to_location_index", "prefix_count",
       "flap_period_minutes"});
  PackIncident inc;
  inc.name = ctx.want_string(ctx.require(v, path, "name"), path + ".name");
  if (inc.name.empty()) {
    ctx.fail(ctx.require(v, path, "name"), path + ".name",
             "name must be non-empty (it keys the manifest and reruns)");
  }
  inc.type = parse_incident_type(ctx, ctx.require(v, path, "type"),
                                 path + ".type");
  inc.region =
      ctx.want_region(ctx.require(v, path, "region"), path + ".region");
  inc.start = ctx.want_time(ctx.require(v, path, "start"), path + ".start");
  inc.duration_minutes = static_cast<int>(ctx.want_int_in(
      ctx.require(v, path, "duration_minutes"), path + ".duration_minutes",
      1, 30 * 24 * 60));
  if (const auto* m = v.find("added_ms")) {
    inc.added_ms = ctx.want_number(*m, path + ".added_ms");
    if (inc.added_ms < 0.0 || inc.added_ms > 10000.0) {
      ctx.fail(*m, path + ".added_ms", "added_ms must be in [0, 10000]");
    }
  }
  const auto opt_index = [&](std::string_view key, int& field) {
    if (const auto* m = v.find(key)) {
      field = static_cast<int>(
          ctx.want_int_in(*m, path + "." + std::string{key}, 0, 10000));
    }
  };
  opt_index("location_index", inc.location_index);
  opt_index("transit_index", inc.transit_index);
  opt_index("eyeball_index", inc.eyeball_index);
  opt_index("block_index", inc.block_index);
  opt_index("to_location_index", inc.to_location_index);
  opt_index("prefix_count", inc.prefix_count);
  if (const auto* m = v.find("flap_period_minutes")) {
    inc.flap_period_minutes = static_cast<int>(
        ctx.want_int_in(*m, path + ".flap_period_minutes", 5, 24 * 60));
  }

  // Per-type semantic requirements.
  switch (inc.type) {
    case IncidentType::Resteer: {
      const auto* to = v.find("to_region");
      if (!to) {
        ctx.fail(v, path,
                 "resteer incidents require \"to_region\" (where the "
                 "clients are re-steered)");
      }
      inc.to_region = ctx.want_region(*to, path + ".to_region");
      if (inc.to_region == inc.region) {
        ctx.fail(*to, path + ".to_region",
                 "resteer must move clients to a DIFFERENT region");
      }
      break;
    }
    case IncidentType::CloudLocation:
    case IncidentType::MiddleAs:
    case IncidentType::ClientAs:
    case IncidentType::ClientBlock:
      if (inc.added_ms <= 0.0) {
        ctx.fail(v, path,
                 "latency-fault incidents require added_ms > 0 (the "
                 "injected RTT inflation)");
      }
      if (v.find("to_region")) {
        ctx.fail(*v.find("to_region"), path + ".to_region",
                 "to_region is only valid for resteer incidents");
      }
      break;
    case IncidentType::BgpHijack:
    case IncidentType::BgpPathLeak:
    case IncidentType::BgpFlapStorm:
      if (v.find("to_region")) {
        ctx.fail(*v.find("to_region"), path + ".to_region",
                 "to_region is only valid for resteer incidents");
      }
      break;
  }
  return inc;
}

}  // namespace

std::string_view to_string(FeedMode m) noexcept {
  return m == FeedMode::Records ? "records" : "aggregates";
}

std::string_view to_string(IncidentType t) noexcept {
  const auto i = static_cast<std::size_t>(t);
  return i < std::size(kIncidentTypeTokens) ? kIncidentTypeTokens[i] : "?";
}

std::string_view region_token(net::Region r) noexcept {
  const auto i = static_cast<std::size_t>(r);
  return i < std::size(kRegionTokens) ? kRegionTokens[i] : "?";
}

std::optional<net::Region> parse_region_token(
    std::string_view token) noexcept {
  for (std::size_t i = 0; i < std::size(kRegionTokens); ++i) {
    if (token == kRegionTokens[i]) return net::kAllRegions[i];
  }
  return std::nullopt;
}

Pack parse_pack(const util::json::Value& doc,
                const std::string& source_name) {
  const Ctx ctx{source_name};
  ctx.want_object(doc, "$");
  ctx.check_keys(doc, "$",
                 {"name", "description", "mode", "warmup_days", "run_days",
                  "telemetry_seed", "topology", "pipeline", "ingest",
                  "chaos", "surges", "incidents", "restart"});
  Pack pack;
  pack.name = ctx.want_string(ctx.require(doc, "$", "name"), "$.name");
  if (const auto* m = doc.find("description")) {
    pack.description = ctx.want_string(*m, "$.description");
  }
  if (const auto* m = doc.find("mode")) {
    pack.mode = parse_mode(ctx, *m, "$.mode");
  }
  if (const auto* m = doc.find("warmup_days")) {
    pack.warmup_days =
        static_cast<int>(ctx.want_int_in(*m, "$.warmup_days", 1, 30));
  }
  if (const auto* m = doc.find("run_days")) {
    pack.run_days =
        static_cast<int>(ctx.want_int_in(*m, "$.run_days", 1, 60));
  }
  if (const auto* m = doc.find("telemetry_seed")) {
    pack.telemetry_seed = static_cast<std::uint64_t>(
        ctx.want_int_in(*m, "$.telemetry_seed", 0, INT64_MAX));
  }
  if (const auto* m = doc.find("topology")) {
    parse_topology(ctx, *m, "$.topology", pack.topology);
  }
  if (const auto* m = doc.find("pipeline")) {
    parse_pipeline(ctx, *m, "$.pipeline", pack.pipeline);
  }
  if (const auto* m = doc.find("ingest")) {
    if (pack.mode != FeedMode::Records) {
      ctx.fail(*m, "$.ingest",
               "ingest settings only apply when mode is \"records\" (the "
               "sharded streaming front end); this pack uses \"" +
                   std::string{to_string(pack.mode)} + "\"");
    }
    parse_ingest(ctx, *m, "$.ingest", pack.ingest);
  }
  if (const auto* m = doc.find("chaos")) {
    parse_chaos(ctx, *m, "$.chaos", pack.chaos);
  }
  if (const auto* m = doc.find("surges")) {
    if (!m->is_array()) {
      ctx.fail(*m, "$.surges",
               "expected an array, got " + std::string{m->type_name()});
    }
    for (std::size_t i = 0; i < m->items().size(); ++i) {
      pack.surges.push_back(parse_surge(
          ctx, m->items()[i], "$.surges[" + std::to_string(i) + "]"));
    }
  }
  const auto& incidents = ctx.require(doc, "$", "incidents");
  if (!incidents.is_array()) {
    ctx.fail(incidents, "$.incidents",
             "expected an array, got " + std::string{incidents.type_name()});
  }
  for (std::size_t i = 0; i < incidents.items().size(); ++i) {
    pack.incidents.push_back(
        parse_incident(ctx, incidents.items()[i],
                       "$.incidents[" + std::to_string(i) + "]"));
  }
  // Duplicate incident names would make manifest rows and rerun commands
  // ambiguous.
  for (std::size_t i = 0; i < pack.incidents.size(); ++i) {
    for (std::size_t j = i + 1; j < pack.incidents.size(); ++j) {
      if (pack.incidents[i].name == pack.incidents[j].name) {
        ctx.fail(incidents.items()[j],
                 "$.incidents[" + std::to_string(j) + "].name",
                 "duplicate incident name \"" + pack.incidents[j].name +
                     "\" (names key the manifest)");
      }
    }
  }
  if (const auto* m = doc.find("restart")) {
    ctx.want_object(*m, "$.restart");
    ctx.check_keys(*m, "$.restart", {"at"});
    PackRestart restart;
    const auto& at = ctx.require(*m, "$.restart", "at");
    restart.at = ctx.want_time(at, "$.restart.at");
    if (restart.at.minutes % 15 != 0) {
      ctx.fail(at, "$.restart.at",
               "restart must land on a 15-minute step boundary");
    }
    // Must fall on a step of the evaluation window, with at least one step
    // left afterwards — a restart after the final step recovers nothing.
    const auto first_step =
        util::MinuteTime::from_days(pack.warmup_days).plus_minutes(15);
    const auto last_step =
        util::MinuteTime::from_days(pack.warmup_days + pack.run_days);
    if (restart.at < first_step || !(restart.at < last_step)) {
      ctx.fail(at, "$.restart.at",
               "restart at minute " + std::to_string(restart.at.minutes) +
                   " must fall on an evaluation step strictly before the "
                   "final one (steps run minute " +
                   std::to_string(first_step.minutes) + " .. " +
                   std::to_string(last_step.minutes) + ")");
    }
    pack.restart = restart;
  }
  // Every incident must end inside the evaluation window, or it can never
  // be scored.
  const auto window_end =
      util::MinuteTime::from_days(pack.warmup_days + pack.run_days);
  const auto window_start = util::MinuteTime::from_days(pack.warmup_days);
  for (std::size_t i = 0; i < pack.incidents.size(); ++i) {
    const auto& inc = pack.incidents[i];
    if (inc.start < window_start ||
        inc.start.plus_minutes(inc.duration_minutes) > window_end) {
      ctx.fail(incidents.items()[i],
               "$.incidents[" + std::to_string(i) + "]",
               "incident \"" + inc.name + "\" runs outside the evaluation "
               "window [day " + std::to_string(pack.warmup_days) + ", day " +
               std::to_string(pack.warmup_days + pack.run_days) +
               ") and could never be scored");
    }
  }
  return pack;
}

Pack load_pack(const std::string& path) {
  return parse_pack(util::json::parse_file(path), path);
}

std::vector<sim::Incident> resolve_incidents(const Pack& pack,
                                             const net::Topology& topology) {
  std::vector<sim::Incident> out;
  out.reserve(pack.incidents.size());

  // client_block targeting: rank the region's blocks by activity weight so
  // "block_index": 0 is always the busiest /24 (ties broken by block id for
  // determinism).
  const auto ranked_blocks = [&](net::Region region) {
    std::vector<const net::ClientBlock*> blocks;
    for (const auto& b : topology.blocks()) {
      if (b.region == region) blocks.push_back(&b);
    }
    std::sort(blocks.begin(), blocks.end(), [](const auto* a, const auto* b) {
      if (a->activity_weight != b->activity_weight) {
        return a->activity_weight > b->activity_weight;
      }
      return a->block.block < b->block.block;
    });
    return blocks;
  };

  const auto index_error = [](const PackIncident& inc, std::string_view what,
                              int index, std::size_t size) -> PackError {
    return PackError{"incident \"" + inc.name + "\": " + std::string{what} +
                     " index " + std::to_string(index) +
                     " out of range (this topology has " +
                     std::to_string(size) + ")"};
  };

  for (const auto& pi : pack.incidents) {
    sim::Incident inc;
    inc.name = pi.name;
    inc.region = pi.region;
    inc.start = pi.start;
    inc.duration_minutes = pi.duration_minutes;
    inc.added_ms = pi.added_ms;

    switch (pi.type) {
      case IncidentType::CloudLocation: {
        inc.kind = sim::FaultKind::CloudLocation;
        const auto locs = topology.locations_in(pi.region);
        if (pi.location_index >= static_cast<int>(locs.size())) {
          throw index_error(pi, "location", pi.location_index, locs.size());
        }
        inc.cloud_location = locs[static_cast<std::size_t>(pi.location_index)];
        inc.culprit_as = topology.cloud_as();
        break;
      }
      case IncidentType::MiddleAs: {
        inc.kind = sim::FaultKind::MiddleAs;
        const auto transits = sim::non_dominant_transits(topology, pi.region);
        if (pi.transit_index >= static_cast<int>(transits.size())) {
          throw index_error(pi, "transit", pi.transit_index, transits.size());
        }
        inc.target_as = transits[static_cast<std::size_t>(pi.transit_index)];
        inc.culprit_as = inc.target_as;
        break;
      }
      case IncidentType::ClientAs: {
        inc.kind = sim::FaultKind::ClientAs;
        const auto& eyeballs = topology.eyeballs_in(pi.region);
        if (pi.eyeball_index >= static_cast<int>(eyeballs.size())) {
          throw index_error(pi, "eyeball", pi.eyeball_index, eyeballs.size());
        }
        inc.target_as = eyeballs[static_cast<std::size_t>(pi.eyeball_index)];
        inc.culprit_as = inc.target_as;
        break;
      }
      case IncidentType::ClientBlock: {
        inc.kind = sim::FaultKind::ClientBlock;
        const auto blocks = ranked_blocks(pi.region);
        if (pi.block_index >= static_cast<int>(blocks.size())) {
          throw index_error(pi, "block", pi.block_index, blocks.size());
        }
        const auto* block = blocks[static_cast<std::size_t>(pi.block_index)];
        inc.block = block->block;
        inc.culprit_as = block->client_as;
        break;
      }
      case IncidentType::Resteer: {
        // Re-steered clients cross inter-region transit: the middle segment
        // dominates the inflation, but no single AS failed (§6.3 case 4).
        inc.kind = sim::FaultKind::MiddleAs;
        inc.culprit_as = std::nullopt;
        inc.via_override = true;
        const auto locs = topology.locations_in(pi.to_region);
        if (pi.to_location_index >= static_cast<int>(locs.size())) {
          throw index_error(pi, "to_location", pi.to_location_index,
                            locs.size());
        }
        inc.override_to =
            locs[static_cast<std::size_t>(pi.to_location_index)];
        break;
      }
      case IncidentType::BgpHijack:
      case IncidentType::BgpPathLeak:
      case IncidentType::BgpFlapStorm: {
        inc.disruption = pi.type == IncidentType::BgpHijack
                             ? sim::RouteDisruption::Hijack
                         : pi.type == IncidentType::BgpPathLeak
                             ? sim::RouteDisruption::PathLeak
                             : sim::RouteDisruption::FlapStorm;
        const auto locs = topology.locations_in(pi.region);
        if (pi.location_index >= static_cast<int>(locs.size())) {
          throw index_error(pi, "location", pi.location_index, locs.size());
        }
        inc.disrupt_location =
            locs[static_cast<std::size_t>(pi.location_index)];
        inc.disrupt_prefix_count = pi.prefix_count;
        inc.flap_period_minutes = pi.flap_period_minutes;
        sim::resolve_route_disruption(topology, inc);
        break;
      }
    }
    out.push_back(std::move(inc));
  }
  return out;
}

}  // namespace blameit::scenario
