// Executes a scenario pack end-to-end: builds the synthetic internet, wires
// telemetry -> (optional sharded ingest) -> pipeline with the pack's chaos
// profile, applies the fault schedule, runs the evaluation window at the
// 15-minute cadence, and produces
//   (a) a deterministic trace digest — a stable hash over the per-step
//       verdict stream. Two runs of the same pack (any analytics thread
//       count, any ingest shard count) must produce the same digest; a
//       changed digest means pipeline OUTPUT changed, which is exactly what
//       the CI golden files gate on.
//   (b) per-incident scores with overlap-aware pass/fail (see score.h), and
//   (c) a JSONL manifest with a copy-pasteable rerun command per incident.
#pragma once

#include <string>
#include <vector>

#include "scenario/pack.h"
#include "scenario/score.h"

namespace blameit::scenario {

struct RunnerOptions {
  /// Override the pack's analytics thread count (0 = use the pack's value).
  int analytics_threads = 0;
  /// Override the pack's ingest shard count (records mode; 0 = pack value).
  int ingest_shards = 0;
};

struct RunResult {
  std::string pack_name;
  std::string digest;  ///< 16 hex chars over the per-step verdict stream
  std::vector<IncidentScore> scores;
  int passed = 0;
  int failed = 0;
  double accuracy = 0.0;  ///< passed / total
  int steps = 0;
  long blames_total = 0;
  long diagnoses_total = 0;

  // Ingest-plane pressure (records mode only; zero in aggregates mode).
  std::uint64_t ingest_records_in = 0;
  std::uint64_t ingest_late_dropped = 0;
  std::uint64_t ingest_backpressure_waits = 0;
  std::uint64_t ingest_ring_high_water = 0;

  // Restart recovery (packs with a "restart" stanza only). The pack runs
  // twice: once uninterrupted, once with a snapshot/kill/restore of the
  // pipeline at the scheduled step. `digest` above is the RESTARTED run's
  // digest (that is what the golden file pins); restart_ok says it matched
  // the uninterrupted reference — recovery lost or invented nothing.
  bool restarted = false;
  bool restart_ok = true;
  std::string uninterrupted_digest;
};

/// Runs the pack. Throws PackError / std::invalid_argument on schedule
/// errors (e.g. an incident that cannot be applied).
[[nodiscard]] RunResult run_pack(const Pack& pack,
                                 const RunnerOptions& options = {});

/// Renders the JSONL manifest: one line per incident (pass/fail, votes,
/// overlap partners, and a rerun command reproducing this exact run), then
/// one trailing summary line with the digest. `pack_path` appears in the
/// rerun commands.
[[nodiscard]] std::string manifest_jsonl(const Pack& pack,
                                         const RunResult& result,
                                         const std::string& pack_path,
                                         const RunnerOptions& options = {});

}  // namespace blameit::scenario
