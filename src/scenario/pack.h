// Declarative scenario packs: a JSON DSL describing a full end-to-end run —
// topology scale, warmup/evaluation window, chaos profile, traffic surges,
// and a fault schedule with ground truth — so regression scenarios live as
// checked-in data instead of hand-written bench main()s.
//
// Validation philosophy: a pack is hand-edited JSON, so every schema error
// must carry (a) the file:line:column of the offending value, (b) the JSON
// path to it (e.g. incidents[2].type), and (c) the allowed values when the
// field is an enumeration. "unknown region" with no pointer is a bug.
#pragma once

#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/config.h"
#include "ingest/engine.h"
#include "net/geo.h"
#include "net/topology.h"
#include "sim/chaos.h"
#include "sim/scenario.h"
#include "sim/telemetry.h"
#include "util/json_reader.h"

namespace blameit::scenario {

/// Schema violation in a pack file. The message is already fully formatted
/// ("<file>:<line>:<col>: <path>: <what> (allowed: ...)").
class PackError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// How the pipeline gets its quartets.
enum class FeedMode : std::uint8_t {
  Aggregates,  ///< synchronous QuartetBuilder over generate_aggregates
  Records,     ///< sharded streaming ingest over shuffled raw records
};

[[nodiscard]] std::string_view to_string(FeedMode m) noexcept;

/// Incident archetypes the DSL exposes. Each resolves its target from
/// stable *indices* (e.g. transit_index into the non-dominant transit set,
/// block_index by activity rank) so packs stay valid across topology-seed
/// changes that renumber raw ASNs.
enum class IncidentType : std::uint8_t {
  CloudLocation,
  MiddleAs,
  ClientAs,
  ClientBlock,
  Resteer,
  BgpHijack,
  BgpPathLeak,
  BgpFlapStorm,
};

[[nodiscard]] std::string_view to_string(IncidentType t) noexcept;

/// One scheduled incident, still in DSL terms (indices, not resolved ASes).
struct PackIncident {
  std::string name;
  IncidentType type{};
  net::Region region{};
  util::MinuteTime start;
  int duration_minutes = 0;
  double added_ms = 0.0;

  // Targeting (interpretation depends on type; all default to 0):
  int location_index = 0;  ///< cloud_location / bgp_* disrupt location
  int transit_index = 0;   ///< middle_as: index into non-dominant transits
  int eyeball_index = 0;   ///< client_as: index into the region's eyeballs
  int block_index = 0;     ///< client_block: rank by activity weight

  // resteer only:
  net::Region to_region{};
  int to_location_index = 0;

  // bgp_* only:
  int prefix_count = 0;         ///< 0 = all of the region's prefixes
  int flap_period_minutes = 30;  ///< bgp_flap_storm
};

/// A regional flash-crowd window (multiplies client sample volume).
struct PackSurge {
  util::MinuteTime start;
  int duration_minutes = 0;
  net::Region region{};
  double multiplier = 1.0;
};

/// A scheduled pipeline restart: after the step at `at` completes, the
/// pipeline state is snapshotted, the pipeline is destroyed, and a fresh one
/// is restored from the snapshot before the next step. The simulated
/// internet (topology, faults, chaos, traceroute engine, ingest plumbing)
/// persists across the restart — it is the environment, not the monitor.
/// The runner executes the pack twice (uninterrupted and restarted) and
/// reports whether the two verdict-stream digests match.
struct PackRestart {
  util::MinuteTime at;  ///< must land on a 15-minute step inside the window
};

struct Pack {
  std::string name;
  std::string description;
  FeedMode mode = FeedMode::Aggregates;
  int warmup_days = 3;
  int run_days = 1;

  net::TopologyConfig topology{};
  core::BlameItConfig pipeline{};
  ingest::IngestConfig ingest{};
  sim::ChaosConfig chaos{};
  std::uint64_t telemetry_seed = 7;

  std::vector<PackSurge> surges;
  std::vector<PackIncident> incidents;
  std::optional<PackRestart> restart;
};

/// Parses and validates a pack document. `source_name` is used in error
/// messages (the file path, or "<inline>" for tests). Throws PackError with
/// an actionable message on any schema violation.
[[nodiscard]] Pack parse_pack(const util::json::Value& doc,
                              const std::string& source_name);

/// Loads, parses and validates a pack file. Throws PackError (schema) or
/// util::json::ParseError (malformed JSON) with file:line:column context.
[[nodiscard]] Pack load_pack(const std::string& path);

/// Resolves the DSL incidents of a pack against a topology into fully
/// specified sim::Incidents (ground truth included). Throws PackError when
/// an index is out of range for this topology, naming the incident.
[[nodiscard]] std::vector<sim::Incident> resolve_incidents(
    const Pack& pack, const net::Topology& topology);

/// Region name <-> enum for the DSL (lowercase snake_case).
[[nodiscard]] std::string_view region_token(net::Region r) noexcept;
[[nodiscard]] std::optional<net::Region> parse_region_token(
    std::string_view token) noexcept;

}  // namespace blameit::scenario
