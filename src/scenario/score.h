// Incident scoring with explicit overlap precedence.
//
// Like the paper's §6.3 validation, an incident is judged by the majority
// blame over its window, restricted to quartets attributable to it (the
// dense non-mobile series; Insufficient is an abstention).
//
// Overlap policy (documented here because the 88-incident suite never needs
// it — suite incidents are region-disjoint, but scenario packs deliberately
// stack incidents): when the SAME blame record is attributable to two or
// more live incidents, ground truth is genuinely ambiguous — a cloud fault
// and a middle fault on the same paths produce one blame stream, not two.
// So overlap is detected at observation time (a blame claimed by >= 2
// incidents links them into an overlap set), and an incident's verdict is
// accepted iff the majority category lands in the ACCEPTABLE SET: its own
// expected category plus the expected categories of incidents it overlapped
// with. Within an overlapping pair the LATEST-START incident is considered
// the primary owner of the shared records (the paper's operators triage the
// newest event first); the scorer reports it as `primary`, and reports the
// partner names so the manifest makes the ambiguity visible instead of
// burying it in a pass/fail bit.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "core/pipeline.h"
#include "net/topology.h"
#include "sim/scenario.h"

namespace blameit::scenario {

/// Expected blame category for an incident's fault kind.
[[nodiscard]] core::Blame expected_blame(sim::FaultKind kind) noexcept;

/// Is this quartet's blame attributable to the incident (right region +
/// right target)?
[[nodiscard]] bool attributable(const net::Topology& topology,
                                const analysis::Quartet& quartet,
                                const sim::Incident& incident);

/// Final judgement for one incident.
struct IncidentScore {
  std::string name;
  core::Blame expected{};
  /// Majority observed category (Insufficient when nothing attributable was
  /// seen — i.e. undetected).
  core::Blame majority = core::Blame::Insufficient;
  int votes_for_majority = 0;
  int votes_total = 0;
  bool detected = false;
  bool passed = false;
  /// The injected culprit AS was identified (passively or actively).
  bool as_identified = false;
  /// Incidents whose attributable records overlapped this one's.
  std::vector<std::string> overlapped_with;
  /// True when this incident is the latest-start member of its overlap set
  /// (or has no overlap at all): the record stream is "its" to explain.
  bool primary = true;
};

/// Accumulates per-step reports against a fixed incident schedule;
/// call observe() for every pipeline step, then finish() once.
class IncidentScorer {
 public:
  IncidentScorer(const net::Topology* topology,
                 std::vector<sim::Incident> incidents);

  /// Folds one step's blames/diagnoses into the per-incident tallies.
  void observe(const core::StepReport& report);

  [[nodiscard]] std::vector<IncidentScore> finish() const;

  [[nodiscard]] const std::vector<sim::Incident>& incidents() const noexcept {
    return incidents_;
  }

 private:
  const net::Topology* topology_;
  std::vector<sim::Incident> incidents_;
  std::vector<std::map<core::Blame, int>> verdicts_;
  std::vector<bool> as_identified_;
  /// overlaps_[i] = indices of incidents that co-claimed a record with i.
  std::vector<std::set<std::size_t>> overlaps_;
};

}  // namespace blameit::scenario
