#include "sim/scenario.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/rng.h"

namespace blameit::sim {

namespace {

Fault fault_from(const Incident& incident) {
  Fault f;
  f.added_ms = incident.added_ms;
  f.start = incident.start;
  f.duration_minutes = incident.duration_minutes;
  f.label = incident.name;
  switch (incident.kind) {
    case FaultKind::CloudLocation:
      f.kind = FaultKind::CloudLocation;
      f.cloud_location = incident.cloud_location;
      break;
    case FaultKind::MiddleAs:
      f.kind = FaultKind::MiddleAs;
      f.as = incident.target_as;
      break;
    case FaultKind::ClientAs:
      f.kind = FaultKind::ClientAs;
      f.as = incident.target_as;
      break;
    case FaultKind::ClientBlock:
      f.kind = FaultKind::ClientBlock;
      f.block = incident.block;
      break;
  }
  return f;
}

}  // namespace

void apply_incident(const Incident& incident, FaultInjector& injector,
                    TelemetryGenerator* generator) {
  if (incident.via_override) {
    if (!generator) {
      throw std::invalid_argument{
          "apply_incident: override incident needs a telemetry generator"};
    }
    generator->add_override(
        TrafficOverride{.start = incident.start,
                        .duration_minutes = incident.duration_minutes,
                        .client_region = incident.region,
                        .to_location = incident.override_to});
    return;
  }
  injector.add(fault_from(incident));
}

void apply_incidents(const std::vector<Incident>& incidents,
                     FaultInjector& injector, TelemetryGenerator* generator) {
  for (const auto& incident : incidents) {
    apply_incident(incident, injector, generator);
  }
}

std::vector<Incident> make_case_studies(const net::Topology& topology,
                                        util::MinuteTime first_start) {
  std::vector<Incident> out;
  auto start = first_start;
  const auto cloud = topology.cloud_as();

  // 1) Maintenance in Brazil: unfinished maintenance inside the cloud's
  //    Brazil edge; southern-American clients see inflated RTTs for a long
  //    stretch (§6.3 case 1 lasted days; we use 8 hours).
  {
    Incident inc;
    inc.name = "brazil-maintenance";
    inc.kind = FaultKind::CloudLocation;
    inc.region = net::Region::Brazil;
    inc.cloud_location = topology.locations_in(net::Region::Brazil).front();
    inc.culprit_as = cloud;
    inc.start = start;
    inc.duration_minutes = 8 * 60;
    inc.added_ms = 70.0;
    out.push_back(inc);
    start = start.plus_minutes(inc.duration_minutes + 120);
  }

  // 2) Peering fault in the USA: a change inside a peering (transit) AS
  //    degrades many paths countrywide; middle-segment issue.
  {
    Incident inc;
    inc.name = "us-peering-fault";
    inc.kind = FaultKind::MiddleAs;
    inc.region = net::Region::UnitedStates;
    const auto& transits = topology.transits_in(net::Region::UnitedStates);
    inc.target_as = transits.at(1);  // a regional (non-gateway) transit
    inc.culprit_as = inc.target_as;
    inc.start = start;
    inc.duration_minutes = 3 * 60;
    inc.added_ms = 45.0;
    out.push_back(inc);
    start = start.plus_minutes(inc.duration_minutes + 120);
  }

  // 3) Cloud overload in Australia: server CPU overload at one location
  //    (median RTT 25ms -> 82ms in the paper).
  {
    Incident inc;
    inc.name = "australia-overload";
    inc.kind = FaultKind::CloudLocation;
    inc.region = net::Region::Australia;
    inc.cloud_location = topology.locations_in(net::Region::Australia).front();
    inc.culprit_as = cloud;
    inc.start = start;
    inc.duration_minutes = 90;
    inc.added_ms = 57.0;
    out.push_back(inc);
    start = start.plus_minutes(inc.duration_minutes + 120);
  }

  // 4) Traffic shift from East Asia to the US West coast: BGP announcement
  //    side-effects re-steer east-Asian clients to US edges; their paths now
  //    cross the transpacific backbone and the middle segment dominates the
  //    inflation. No single AS failed, so only the category is validated.
  {
    Incident inc;
    inc.name = "east-asia-traffic-shift";
    inc.kind = FaultKind::MiddleAs;
    inc.culprit_as = std::nullopt;
    inc.region = net::Region::EastAsia;
    inc.via_override = true;
    inc.override_to =
        topology.locations_in(net::Region::UnitedStates).front();
    inc.start = start;
    inc.duration_minutes = 2 * 60;
    inc.added_ms = 0.0;  // inflation comes from the longer path itself
    out.push_back(inc);
    start = start.plus_minutes(inc.duration_minutes + 120);
  }

  // 5) Client ISP maintenance in Italy: unannounced maintenance inside a
  //    European eyeball ISP (median 9ms -> 161ms in the paper).
  {
    Incident inc;
    inc.name = "italy-client-isp";
    inc.kind = FaultKind::ClientAs;
    inc.region = net::Region::Europe;
    inc.target_as = topology.eyeballs_in(net::Region::Europe).front();
    inc.culprit_as = inc.target_as;
    inc.start = start;
    inc.duration_minutes = 4 * 60;
    inc.added_ms = 150.0;
    out.push_back(inc);
  }
  return out;
}

std::vector<Incident> make_incident_suite(const net::Topology& topology,
                                          const IncidentSuiteConfig& config) {
  if (config.count < 1 || config.min_duration_minutes < util::kBucketMinutes ||
      config.max_duration_minutes < config.min_duration_minutes) {
    throw std::invalid_argument{"IncidentSuiteConfig: invalid sizes"};
  }
  util::Rng rng{config.seed};
  std::vector<Incident> out;
  out.reserve(static_cast<std::size_t>(config.count));

  const double total_weight = config.cloud_weight + config.middle_weight +
                              config.client_as_weight +
                              config.client_block_weight;
  if (total_weight <= 0.0) {
    throw std::invalid_argument{"IncidentSuiteConfig: zero category weights"};
  }

  // Per-region cursor so concurrent incidents never share a region (keeps
  // the ground truth of each incident unambiguous when scoring).
  std::unordered_map<net::Region, util::MinuteTime> next_free;
  for (const auto region : net::kAllRegions) {
    next_free[region] = config.first_start;
  }

  for (int i = 0; i < config.count; ++i) {
    // Category draw.
    const double pick = rng.uniform(0.0, total_weight);
    FaultKind kind;
    if (pick < config.cloud_weight) {
      kind = FaultKind::CloudLocation;
    } else if (pick < config.cloud_weight + config.middle_weight) {
      kind = FaultKind::MiddleAs;
    } else if (pick <
               config.cloud_weight + config.middle_weight +
                   config.client_as_weight) {
      kind = FaultKind::ClientAs;
    } else {
      kind = FaultKind::ClientBlock;
    }

    // Region: least-busy first so the suite spreads worldwide.
    net::Region region = net::kAllRegions[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(net::kAllRegions.size()) -
                               1))];
    for (const auto candidate : net::kAllRegions) {
      if (next_free[candidate] < next_free[region]) region = candidate;
    }

    Incident inc;
    inc.kind = kind;
    inc.region = region;
    inc.start = next_free[region];
    // Log-uniform duration: long-tailed mix of fleeting and long issues
    // (§2.3), quantized to whole buckets.
    const double log_lo = std::log(config.min_duration_minutes);
    const double log_hi = std::log(config.max_duration_minutes);
    const int raw = static_cast<int>(std::exp(rng.uniform(log_lo, log_hi)));
    inc.duration_minutes =
        (raw / util::kBucketMinutes) * util::kBucketMinutes;
    inc.duration_minutes =
        std::max(inc.duration_minutes, config.min_duration_minutes);

    const auto& profile = net::region_profile(region);
    // Magnitude comfortably above the region target so badness triggers.
    inc.added_ms = profile.rtt_target_ms * rng.uniform(0.9, 2.5);

    switch (kind) {
      case FaultKind::CloudLocation: {
        const auto locs = topology.locations_in(region);
        inc.cloud_location = locs[static_cast<std::size_t>(rng.uniform_int(
            0, static_cast<std::int64_t>(locs.size()) - 1))];
        inc.culprit_as = topology.cloud_as();
        inc.name = "suite-cloud-" + std::to_string(i);
        break;
      }
      case FaultKind::MiddleAs: {
        const auto& transits = topology.transits_in(region);
        // Any transit, gateway included, may fault.
        inc.target_as = transits[static_cast<std::size_t>(rng.uniform_int(
            0, static_cast<std::int64_t>(transits.size()) - 1))];
        inc.culprit_as = inc.target_as;
        inc.name = "suite-middle-" + std::to_string(i);
        break;
      }
      case FaultKind::ClientAs: {
        const auto& eyeballs = topology.eyeballs_in(region);
        inc.target_as = eyeballs[static_cast<std::size_t>(rng.uniform_int(
            0, static_cast<std::int64_t>(eyeballs.size()) - 1))];
        inc.culprit_as = inc.target_as;
        inc.name = "suite-client-as-" + std::to_string(i);
        break;
      }
      case FaultKind::ClientBlock: {
        // Pick one of the region's blocks.
        std::vector<const net::ClientBlock*> region_blocks;
        for (const auto& block : topology.blocks()) {
          if (block.region == region) region_blocks.push_back(&block);
        }
        const auto* block = region_blocks[static_cast<std::size_t>(
            rng.uniform_int(0,
                            static_cast<std::int64_t>(region_blocks.size()) -
                                1))];
        inc.block = block->block;
        inc.culprit_as = block->client_as;
        inc.name = "suite-client-block-" + std::to_string(i);
        break;
      }
    }

    next_free[region] =
        inc.end().plus_minutes(config.min_gap_minutes);
    out.push_back(std::move(inc));
  }

  std::sort(out.begin(), out.end(), [](const Incident& a, const Incident& b) {
    return a.start < b.start;
  });
  return out;
}

}  // namespace blameit::sim
