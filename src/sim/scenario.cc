#include "sim/scenario.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <stdexcept>
#include <unordered_set>

#include "util/rng.h"

namespace blameit::sim {

std::string_view to_string(RouteDisruption d) noexcept {
  switch (d) {
    case RouteDisruption::None: return "none";
    case RouteDisruption::Hijack: return "hijack";
    case RouteDisruption::PathLeak: return "path-leak";
    case RouteDisruption::FlapStorm: return "flap-storm";
  }
  return "?";
}

namespace {

Fault fault_from(const Incident& incident) {
  Fault f;
  f.added_ms = incident.added_ms;
  f.start = incident.start;
  f.duration_minutes = incident.duration_minutes;
  f.label = incident.name;
  switch (incident.kind) {
    case FaultKind::CloudLocation:
      f.kind = FaultKind::CloudLocation;
      f.cloud_location = incident.cloud_location;
      break;
    case FaultKind::MiddleAs:
      f.kind = FaultKind::MiddleAs;
      f.as = incident.target_as;
      break;
    case FaultKind::ClientAs:
      f.kind = FaultKind::ClientAs;
      f.as = incident.target_as;
      break;
    case FaultKind::ClientBlock:
      f.kind = FaultKind::ClientBlock;
      f.block = incident.block;
      break;
  }
  return f;
}

/// One (location, prefix) pair a route disruption rewires, with the path it
/// leaves and the path it installs. Shared by resolution (which derives the
/// ground-truth culprit from the path delta) and apply (which installs the
/// same delta), so the two can never disagree.
struct DisruptedPair {
  net::CloudLocationId location;
  net::Prefix prefix;
  const net::AsPath* best;  ///< path installed before/after the incident
  const net::AsPath* alt;   ///< path in effect while disrupted
};

std::span<const net::AsId> middle_of(const net::AsPath& path) noexcept {
  if (path.size() < 2) return {};
  return std::span<const net::AsId>{path}.subspan(1, path.size() - 2);
}

std::vector<DisruptedPair> disrupted_pairs(const net::Topology& topology,
                                           const Incident& incident) {
  std::vector<DisruptedPair> out;
  std::unordered_set<std::uint64_t> seen;
  int taken = 0;
  for (const auto& block : topology.blocks()) {
    if (block.region != incident.region) continue;
    const std::uint64_t key =
        (std::uint64_t{block.announced.network} << 8) | block.announced.length;
    if (!seen.insert(key).second) continue;
    if (incident.disrupt_prefix_count > 0 &&
        taken >= incident.disrupt_prefix_count) {
      break;
    }
    ++taken;
    const auto& alts =
        topology.alternates(incident.disrupt_location, block.announced);
    if (alts.size() < 2) continue;  // no alternate: this prefix can't move
    DisruptedPair pair;
    pair.location = incident.disrupt_location;
    pair.prefix = block.announced;
    pair.best = &alts.front();
    switch (incident.disruption) {
      case RouteDisruption::Hijack: {
        // The alternate that introduces the most new ASes — the pattern of
        // traffic abruptly re-homed through infrastructure it never used.
        std::size_t best_new = 0;
        pair.alt = &alts.back();
        for (std::size_t i = 1; i < alts.size(); ++i) {
          const auto old_middle = middle_of(*pair.best);
          std::size_t fresh = 0;
          for (const auto as : middle_of(alts[i])) {
            if (std::find(old_middle.begin(), old_middle.end(), as) ==
                old_middle.end()) {
              ++fresh;
            }
          }
          if (fresh > best_new) {
            best_new = fresh;
            pair.alt = &alts[i];
          }
        }
        break;
      }
      case RouteDisruption::PathLeak: {
        // The longest valley-free alternate: leaked routes detour.
        pair.alt = &alts[1];
        for (std::size_t i = 1; i < alts.size(); ++i) {
          if (alts[i].size() > pair.alt->size()) pair.alt = &alts[i];
        }
        break;
      }
      case RouteDisruption::FlapStorm:
        pair.alt = &alts[1];
        break;
      case RouteDisruption::None:
        break;
    }
    if (pair.alt && *pair.alt != *pair.best) out.push_back(pair);
  }
  return out;
}

[[noreturn]] void missing_sink(const Incident& incident, const char* what) {
  throw std::invalid_argument{
      "apply_incident: incident '" + incident.name + "' (" +
      std::string{to_string(incident.kind)} + ") requires " + what +
      " — refusing to skip it, the run would score against a ground truth "
      "that was never injected"};
}

void install_route_disruption(const Incident& incident,
                              net::Topology& topology) {
  if (incident.kind != FaultKind::MiddleAs) {
    throw std::invalid_argument{"apply_incident: incident '" + incident.name +
                                "': route disruptions are middle-segment "
                                "incidents (kind must be middle-as)"};
  }
  const auto pairs = disrupted_pairs(topology, incident);
  if (pairs.empty()) {
    throw std::invalid_argument{
        "apply_incident: incident '" + incident.name +
        "': no (location, prefix) pair in its region has an alternate path "
        "to disrupt (topology alternates < 2?)"};
  }
  auto& routing = topology.routing();
  const auto end = incident.end();
  for (const auto& pair : pairs) {
    if (incident.disruption == RouteDisruption::FlapStorm) {
      const int period = std::max(1, incident.flap_period_minutes);
      // alt for one period, best for the next, ...; always restored to the
      // best path when the storm ends.
      for (auto t = incident.start; t < end;
           t = t.plus_minutes(2 * period)) {
        routing.change_path(pair.location, pair.prefix, t, *pair.alt);
        const auto back = t.plus_minutes(period);
        routing.change_path(pair.location, pair.prefix,
                            back < end ? back : end, *pair.best);
      }
    } else {
      routing.change_path(pair.location, pair.prefix, incident.start,
                          *pair.alt);
      routing.change_path(pair.location, pair.prefix, end, *pair.best);
    }
  }
}

}  // namespace

void apply_incident(const Incident& incident, const ApplyTargets& targets) {
  if (!targets.injector) {
    missing_sink(incident, "a FaultInjector");
  }
  if (incident.via_override) {
    if (!targets.generator) {
      missing_sink(incident, "a TelemetryGenerator (it is an anycast "
                             "re-steer realized as a traffic override)");
    }
    targets.generator->add_override(
        TrafficOverride{.start = incident.start,
                        .duration_minutes = incident.duration_minutes,
                        .client_region = incident.region,
                        .to_location = incident.override_to});
    // With a topology in hand, the steer is also visible to the BGP listener:
    // one SteerShift churn event per re-steered prefix at the DESTINATION
    // location (where the moved quartets now land), at both edges of the
    // override window. Legacy callers without a topology keep the silent
    // override behavior.
    if (targets.topology) {
      auto& routing = targets.topology->routing();
      std::unordered_set<std::uint64_t> seen;
      for (const auto& block : targets.topology->blocks()) {
        if (block.region != incident.region) continue;
        const std::uint64_t key =
            (std::uint64_t{block.announced.network} << 8) |
            block.announced.length;
        if (!seen.insert(key).second) continue;
        routing.note_steer_shift(incident.override_to, block.announced,
                                 incident.start);
        routing.note_steer_shift(incident.override_to, block.announced,
                                 incident.end());
      }
    }
    return;
  }
  if (incident.disruption != RouteDisruption::None) {
    if (!targets.topology) {
      missing_sink(incident,
                   "a mutable Topology (it is a BGP route disruption)");
    }
    install_route_disruption(incident, *targets.topology);
    // The latency fault rides on top only when the incident carries one —
    // the routing detour itself already inflates RTT via the longer path.
    if (incident.added_ms > 0.0) {
      targets.injector->add(fault_from(incident));
    }
    return;
  }
  targets.injector->add(fault_from(incident));
}

void apply_incidents(const std::vector<Incident>& incidents,
                     const ApplyTargets& targets) {
  for (const auto& incident : incidents) {
    apply_incident(incident, targets);
  }
}

void apply_incident(const Incident& incident, FaultInjector& injector,
                    TelemetryGenerator* generator) {
  apply_incident(incident,
                 ApplyTargets{.injector = &injector, .generator = generator});
}

void apply_incidents(const std::vector<Incident>& incidents,
                     FaultInjector& injector, TelemetryGenerator* generator) {
  for (const auto& incident : incidents) {
    apply_incident(incident, injector, generator);
  }
}

void resolve_route_disruption(const net::Topology& topology,
                              Incident& incident) {
  if (incident.disruption == RouteDisruption::None) {
    throw std::invalid_argument{"resolve_route_disruption: incident '" +
                                incident.name + "' has no disruption"};
  }
  incident.kind = FaultKind::MiddleAs;
  // Default the disrupted edge to the region's first location when the
  // current value points outside the region (e.g. a default-constructed id).
  const auto in_region = topology.locations_in(incident.region);
  if (in_region.empty()) {
    throw std::invalid_argument{"resolve_route_disruption: incident '" +
                                incident.name +
                                "': its region has no cloud locations"};
  }
  if (std::find(in_region.begin(), in_region.end(),
                incident.disrupt_location) == in_region.end()) {
    incident.disrupt_location = in_region.front();
  }

  const auto pairs = disrupted_pairs(topology, incident);
  if (pairs.empty()) {
    throw std::invalid_argument{
        "resolve_route_disruption: incident '" + incident.name +
        "': no (location, prefix) pair in region " +
        std::string{net::to_string(incident.region)} +
        " has an alternate path to disrupt"};
  }
  // Ground-truth culprit: the AS most often introduced by the disrupted
  // paths (ties -> lowest ASN, so resolution is deterministic).
  std::map<std::uint32_t, int> introduced;
  for (const auto& pair : pairs) {
    const auto old_middle = middle_of(*pair.best);
    for (const auto as : middle_of(*pair.alt)) {
      if (std::find(old_middle.begin(), old_middle.end(), as) ==
          old_middle.end()) {
        ++introduced[as.value];
      }
    }
  }
  net::AsId culprit = middle_of(*pairs.front().alt).empty()
                          ? net::AsId{0}
                          : middle_of(*pairs.front().alt).front();
  int best_count = 0;
  for (const auto& [as, count] : introduced) {
    if (count > best_count) {
      best_count = count;
      culprit = net::AsId{as};
    }
  }
  incident.target_as = culprit;
  // A flap storm is churn, not a broken AS: like the paper's anycast
  // re-steer case, only the category (middle) is well-defined.
  incident.culprit_as =
      incident.disruption == RouteDisruption::FlapStorm
          ? std::optional<net::AsId>{}
          : std::optional<net::AsId>{culprit};
}

std::vector<net::AsId> non_dominant_transits(const net::Topology& topology,
                                             net::Region region) {
  std::map<std::uint32_t, std::map<std::uint16_t, int>> usage;
  std::map<std::uint16_t, int> loc_totals;
  for (const auto& block : topology.blocks()) {
    if (block.region != region) continue;
    const auto loc = topology.home_locations(block.block).front();
    const auto* route =
        topology.routing().route_for(loc, block.block, util::MinuteTime{0});
    if (!route) continue;
    ++loc_totals[loc.value];
    for (const auto as : route->middle_ases()) {
      ++usage[as.value][loc.value];
    }
  }
  std::vector<net::AsId> eligible;
  for (const auto as : topology.transits_in(region)) {
    const auto it = usage.find(as.value);
    if (it == usage.end()) continue;  // unused transit: fault invisible
    double max_share = 0.0;
    for (const auto& [loc, n] : it->second) {
      max_share =
          std::max(max_share, static_cast<double>(n) / loc_totals[loc]);
    }
    if (max_share <= 0.42) eligible.push_back(as);
  }
  if (eligible.empty()) eligible = topology.transits_in(region);
  return eligible;
}

std::vector<Incident> make_case_studies(const net::Topology& topology,
                                        util::MinuteTime first_start) {
  std::vector<Incident> out;
  auto start = first_start;
  const auto cloud = topology.cloud_as();

  // 1) Maintenance in Brazil: unfinished maintenance inside the cloud's
  //    Brazil edge; southern-American clients see inflated RTTs for a long
  //    stretch (§6.3 case 1 lasted days; we use 8 hours).
  {
    Incident inc;
    inc.name = "brazil-maintenance";
    inc.kind = FaultKind::CloudLocation;
    inc.region = net::Region::Brazil;
    inc.cloud_location = topology.locations_in(net::Region::Brazil).front();
    inc.culprit_as = cloud;
    inc.start = start;
    inc.duration_minutes = 8 * 60;
    inc.added_ms = 70.0;
    out.push_back(inc);
    start = start.plus_minutes(inc.duration_minutes + 120);
  }

  // 2) Peering fault in the USA: a change inside a peering (transit) AS
  //    degrades many paths countrywide; middle-segment issue.
  {
    Incident inc;
    inc.name = "us-peering-fault";
    inc.kind = FaultKind::MiddleAs;
    inc.region = net::Region::UnitedStates;
    const auto& transits = topology.transits_in(net::Region::UnitedStates);
    inc.target_as = transits.at(1);  // a regional (non-gateway) transit
    inc.culprit_as = inc.target_as;
    inc.start = start;
    inc.duration_minutes = 3 * 60;
    inc.added_ms = 45.0;
    out.push_back(inc);
    start = start.plus_minutes(inc.duration_minutes + 120);
  }

  // 3) Cloud overload in Australia: server CPU overload at one location
  //    (median RTT 25ms -> 82ms in the paper).
  {
    Incident inc;
    inc.name = "australia-overload";
    inc.kind = FaultKind::CloudLocation;
    inc.region = net::Region::Australia;
    inc.cloud_location = topology.locations_in(net::Region::Australia).front();
    inc.culprit_as = cloud;
    inc.start = start;
    inc.duration_minutes = 90;
    inc.added_ms = 57.0;
    out.push_back(inc);
    start = start.plus_minutes(inc.duration_minutes + 120);
  }

  // 4) Traffic shift from East Asia to the US West coast: BGP announcement
  //    side-effects re-steer east-Asian clients to US edges; their paths now
  //    cross the transpacific backbone and the middle segment dominates the
  //    inflation. No single AS failed, so only the category is validated.
  {
    Incident inc;
    inc.name = "east-asia-traffic-shift";
    inc.kind = FaultKind::MiddleAs;
    inc.culprit_as = std::nullopt;
    inc.region = net::Region::EastAsia;
    inc.via_override = true;
    inc.override_to =
        topology.locations_in(net::Region::UnitedStates).front();
    inc.start = start;
    inc.duration_minutes = 2 * 60;
    inc.added_ms = 0.0;  // inflation comes from the longer path itself
    out.push_back(inc);
    start = start.plus_minutes(inc.duration_minutes + 120);
  }

  // 5) Client ISP maintenance in Italy: unannounced maintenance inside a
  //    European eyeball ISP (median 9ms -> 161ms in the paper).
  {
    Incident inc;
    inc.name = "italy-client-isp";
    inc.kind = FaultKind::ClientAs;
    inc.region = net::Region::Europe;
    inc.target_as = topology.eyeballs_in(net::Region::Europe).front();
    inc.culprit_as = inc.target_as;
    inc.start = start;
    inc.duration_minutes = 4 * 60;
    inc.added_ms = 150.0;
    out.push_back(inc);
  }
  return out;
}

std::vector<Incident> make_incident_suite(const net::Topology& topology,
                                          const IncidentSuiteConfig& config) {
  if (config.count < 1 || config.min_duration_minutes < util::kBucketMinutes ||
      config.max_duration_minutes < config.min_duration_minutes) {
    throw std::invalid_argument{"IncidentSuiteConfig: invalid sizes"};
  }
  util::Rng rng{config.seed};
  std::vector<Incident> out;
  out.reserve(static_cast<std::size_t>(config.count));

  const double total_weight = config.cloud_weight + config.middle_weight +
                              config.client_as_weight +
                              config.client_block_weight;
  if (total_weight <= 0.0) {
    throw std::invalid_argument{"IncidentSuiteConfig: zero category weights"};
  }

  // Per-region cursor so concurrent incidents never share a region (keeps
  // the ground truth of each incident unambiguous when scoring).
  std::unordered_map<net::Region, util::MinuteTime> next_free;
  for (const auto region : net::kAllRegions) {
    next_free[region] = config.first_start;
  }

  for (int i = 0; i < config.count; ++i) {
    // Category draw.
    const double pick = rng.uniform(0.0, total_weight);
    FaultKind kind;
    if (pick < config.cloud_weight) {
      kind = FaultKind::CloudLocation;
    } else if (pick < config.cloud_weight + config.middle_weight) {
      kind = FaultKind::MiddleAs;
    } else if (pick <
               config.cloud_weight + config.middle_weight +
                   config.client_as_weight) {
      kind = FaultKind::ClientAs;
    } else {
      kind = FaultKind::ClientBlock;
    }

    // Region: least-busy first so the suite spreads worldwide.
    net::Region region = net::kAllRegions[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(net::kAllRegions.size()) -
                               1))];
    for (const auto candidate : net::kAllRegions) {
      if (next_free[candidate] < next_free[region]) region = candidate;
    }

    Incident inc;
    inc.kind = kind;
    inc.region = region;
    inc.start = next_free[region];
    // Log-uniform duration: long-tailed mix of fleeting and long issues
    // (§2.3), quantized to whole buckets.
    const double log_lo = std::log(config.min_duration_minutes);
    const double log_hi = std::log(config.max_duration_minutes);
    const int raw = static_cast<int>(std::exp(rng.uniform(log_lo, log_hi)));
    inc.duration_minutes =
        (raw / util::kBucketMinutes) * util::kBucketMinutes;
    inc.duration_minutes =
        std::max(inc.duration_minutes, config.min_duration_minutes);

    const auto& profile = net::region_profile(region);
    // Magnitude comfortably above the region target so badness triggers.
    inc.added_ms = profile.rtt_target_ms * rng.uniform(0.9, 2.5);

    switch (kind) {
      case FaultKind::CloudLocation: {
        const auto locs = topology.locations_in(region);
        inc.cloud_location = locs[static_cast<std::size_t>(rng.uniform_int(
            0, static_cast<std::int64_t>(locs.size()) - 1))];
        inc.culprit_as = topology.cloud_as();
        inc.name = "suite-cloud-" + std::to_string(i);
        break;
      }
      case FaultKind::MiddleAs: {
        const auto& transits = topology.transits_in(region);
        // Any transit, gateway included, may fault.
        inc.target_as = transits[static_cast<std::size_t>(rng.uniform_int(
            0, static_cast<std::int64_t>(transits.size()) - 1))];
        inc.culprit_as = inc.target_as;
        inc.name = "suite-middle-" + std::to_string(i);
        break;
      }
      case FaultKind::ClientAs: {
        const auto& eyeballs = topology.eyeballs_in(region);
        inc.target_as = eyeballs[static_cast<std::size_t>(rng.uniform_int(
            0, static_cast<std::int64_t>(eyeballs.size()) - 1))];
        inc.culprit_as = inc.target_as;
        inc.name = "suite-client-as-" + std::to_string(i);
        break;
      }
      case FaultKind::ClientBlock: {
        // Pick one of the region's blocks.
        std::vector<const net::ClientBlock*> region_blocks;
        for (const auto& block : topology.blocks()) {
          if (block.region == region) region_blocks.push_back(&block);
        }
        const auto* block = region_blocks[static_cast<std::size_t>(
            rng.uniform_int(0,
                            static_cast<std::int64_t>(region_blocks.size()) -
                                1))];
        inc.block = block->block;
        inc.culprit_as = block->client_as;
        inc.name = "suite-client-block-" + std::to_string(i);
        break;
      }
    }

    next_free[region] =
        inc.end().plus_minutes(config.min_gap_minutes);
    out.push_back(std::move(inc));
  }

  std::sort(out.begin(), out.end(), [](const Incident& a, const Incident& b) {
    return a.start < b.start;
  });
  return out;
}

}  // namespace blameit::sim
