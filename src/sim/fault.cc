#include "sim/fault.h"

#include <stdexcept>

namespace blameit::sim {

std::string_view to_string(FaultKind k) noexcept {
  switch (k) {
    case FaultKind::CloudLocation: return "cloud";
    case FaultKind::MiddleAs: return "middle-as";
    case FaultKind::ClientAs: return "client-as";
    case FaultKind::ClientBlock: return "client-block";
  }
  return "?";
}

void FaultInjector::add(Fault fault) {
  if (fault.added_ms < 0.0 || fault.duration_minutes <= 0) {
    throw std::invalid_argument{
        "FaultInjector: fault needs added_ms >= 0 and duration > 0"};
  }
  const std::size_t idx = faults_.size();
  switch (fault.kind) {
    case FaultKind::CloudLocation:
      by_location_[fault.cloud_location.value].push_back(idx);
      break;
    case FaultKind::MiddleAs:
      by_middle_as_[fault.as].push_back(idx);
      break;
    case FaultKind::ClientAs:
      by_client_as_[fault.as].push_back(idx);
      break;
    case FaultKind::ClientBlock:
      by_block_[fault.block].push_back(idx);
      break;
  }
  faults_.push_back(std::move(fault));
}

PathFaultDelays FaultInjector::delays_for(net::CloudLocationId location,
                                          const net::RouteEntry& route,
                                          net::Slash24 block,
                                          net::AsId client_as,
                                          util::MinuteTime t) const {
  PathFaultDelays delays;
  const auto middle = route.middle_ases();
  delays.middle_ms.assign(middle.size(), 0.0);

  if (const auto it = by_location_.find(location.value);
      it != by_location_.end()) {
    for (const std::size_t idx : it->second) {
      const Fault& f = faults_[idx];
      if (f.active_at(t)) delays.cloud_ms += f.added_ms;
    }
  }
  for (std::size_t i = 0; i < middle.size(); ++i) {
    const auto it = by_middle_as_.find(middle[i]);
    if (it == by_middle_as_.end()) continue;
    for (const std::size_t idx : it->second) {
      const Fault& f = faults_[idx];
      if (!f.active_at(t)) continue;
      if (f.only_via_location && *f.only_via_location != location) continue;
      delays.middle_ms[i] += f.added_ms;
    }
  }
  if (const auto it = by_client_as_.find(client_as);
      it != by_client_as_.end()) {
    for (const std::size_t idx : it->second) {
      const Fault& f = faults_[idx];
      if (f.active_at(t)) delays.client_ms += f.added_ms;
    }
  }
  if (const auto it = by_block_.find(block); it != by_block_.end()) {
    for (const std::size_t idx : it->second) {
      const Fault& f = faults_[idx];
      if (f.active_at(t)) delays.client_ms += f.added_ms;
    }
  }
  return delays;
}

bool FaultInjector::any_active(util::MinuteTime t) const noexcept {
  for (const Fault& f : faults_) {
    if (f.active_at(t)) return true;
  }
  return false;
}

}  // namespace blameit::sim
