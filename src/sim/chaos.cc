#include "sim/chaos.h"

#include <stdexcept>

namespace blameit::sim {

namespace {

// Distinct stream tags so the loss / timeout / silent / telemetry draws are
// statistically independent even for the same probe identity.
constexpr std::uint64_t kLossTag = 0x10535;
constexpr std::uint64_t kHopTag = 0x40953;
constexpr std::uint64_t kDupTag = 0xD0BBE;
constexpr std::uint64_t kLateTag = 0x1A7E0;
constexpr std::uint64_t kChurnTag = 0xC4021;

}  // namespace

ChaosInjector::ChaosInjector(ChaosConfig config, obs::Registry* registry)
    : config_(config) {
  auto valid_rate = [](double r) { return r >= 0.0 && r <= 1.0; };
  if (!valid_rate(config_.probe_loss_rate) ||
      !valid_rate(config_.hop_timeout_rate) ||
      !valid_rate(config_.silent_as_rate) ||
      !valid_rate(config_.duplicate_record_rate) ||
      !valid_rate(config_.late_record_rate) ||
      !valid_rate(config_.churn_feed_loss_rate) ||
      !valid_rate(config_.churn_feed_delay_rate) ||
      config_.late_record_delay_buckets < 1 ||
      config_.churn_feed_delay_minutes < 1) {
    throw std::invalid_argument{"ChaosConfig: rate outside [0, 1]"};
  }
  lost_c_ = obs::counter(registry, "chaos.probes_lost");
  outage_c_ = obs::counter(registry, "chaos.outage_probes");
  timeout_c_ = obs::counter(registry, "chaos.hop_timeouts");
  silent_c_ = obs::counter(registry, "chaos.silent_hops");
  dup_c_ = obs::counter(registry, "chaos.records_duplicated");
  late_c_ = obs::counter(registry, "chaos.records_delayed");
}

bool ChaosInjector::in_outage(util::MinuteTime t) const noexcept {
  for (const auto& window : config_.outages) {
    if (window.active_at(t)) return true;
  }
  return false;
}

double ChaosInjector::roll(std::uint64_t stream_tag, std::uint64_t a,
                           std::uint64_t b, std::uint64_t c) const {
  util::Rng rng{util::hash_combine(
      config_.seed,
      util::hash_combine(stream_tag,
                         util::hash_combine(a, util::hash_combine(b, c))))};
  return rng.uniform();
}

bool ChaosInjector::probe_lost(net::CloudLocationId from, net::Slash24 target,
                               util::MinuteTime t, int attempt) const {
  if (config_.probe_loss_rate <= 0.0) return false;
  const std::uint64_t who =
      (std::uint64_t{from.value} << 32) | std::uint64_t{target.block};
  return roll(kLossTag, who, static_cast<std::uint64_t>(t.minutes),
              static_cast<std::uint64_t>(attempt)) < config_.probe_loss_rate;
}

ChaosInjector::HopFate ChaosInjector::hop_fate(net::CloudLocationId from,
                                               net::Slash24 target,
                                               util::MinuteTime t, int attempt,
                                               std::size_t hop_index) const {
  if (config_.hop_timeout_rate <= 0.0 && config_.silent_as_rate <= 0.0) {
    return HopFate::Respond;
  }
  const std::uint64_t who =
      (std::uint64_t{from.value} << 32) | std::uint64_t{target.block};
  const std::uint64_t when =
      (static_cast<std::uint64_t>(t.minutes) << 16) |
      (static_cast<std::uint64_t>(attempt) & 0xFFFF);
  const double u = roll(kHopTag, who, when, hop_index);
  // One draw decides both fates: [0, timeout) → Timeout,
  // [timeout, timeout + silent) → Silent, rest → Respond.
  if (u < config_.hop_timeout_rate) return HopFate::Timeout;
  if (u < config_.hop_timeout_rate + config_.silent_as_rate) {
    return HopFate::Silent;
  }
  return HopFate::Respond;
}

bool ChaosInjector::duplicate_record(util::TimeBucket bucket,
                                     std::uint64_t record_index) const {
  if (config_.duplicate_record_rate <= 0.0) return false;
  const bool dup =
      roll(kDupTag, static_cast<std::uint64_t>(bucket.index), record_index,
           0) < config_.duplicate_record_rate;
  if (dup) obs::add(dup_c_);
  return dup;
}

bool ChaosInjector::late_record(util::TimeBucket bucket,
                                std::uint64_t record_index) const {
  if (config_.late_record_rate <= 0.0) return false;
  const bool late =
      roll(kLateTag, static_cast<std::uint64_t>(bucket.index), record_index,
           0) < config_.late_record_rate;
  if (late) obs::add(late_c_);
  return late;
}

ChaosInjector::ChurnFate ChaosInjector::churn_fate(
    net::CloudLocationId location, std::uint32_t prefix_network,
    util::MinuteTime t, std::uint8_t kind) const {
  if (config_.churn_feed_loss_rate <= 0.0 &&
      config_.churn_feed_delay_rate <= 0.0) {
    return ChurnFate::Deliver;
  }
  const std::uint64_t who =
      (std::uint64_t{location.value} << 40) | std::uint64_t{prefix_network};
  const double u = roll(kChurnTag, who, static_cast<std::uint64_t>(t.minutes),
                        kind);
  // One draw decides both fates, like hop_fate.
  if (u < config_.churn_feed_loss_rate) return ChurnFate::Drop;
  if (u < config_.churn_feed_loss_rate + config_.churn_feed_delay_rate) {
    return ChurnFate::Delay;
  }
  return ChurnFate::Deliver;
}

ChaosRecordFeed::ChaosRecordFeed(const ChaosInjector* chaos, Feed inner)
    : chaos_(chaos), inner_(std::move(inner)) {
  if (!chaos_ || !inner_) {
    throw std::invalid_argument{"ChaosRecordFeed: null dependency"};
  }
}

void ChaosRecordFeed::operator()(util::TimeBucket bucket, const Sink& sink) {
  std::uint64_t index = 0;
  inner_(bucket, [&](const analysis::RttRecord& record) {
    const std::uint64_t i = index++;
    if (chaos_->late_record(bucket, i)) {
      // Held back: re-delivered with this bucket's later siblings, by which
      // time the ingest watermark has closed the record's own bucket.
      held_back_[bucket.index + chaos_->config().late_record_delay_buckets]
          .push_back(record);
      ++delayed_n_;
      return;
    }
    sink(record);
    if (chaos_->duplicate_record(bucket, i)) {
      sink(record);
      ++duplicated_;
    }
  });
  // Late arrivals scheduled for this bucket (or, if buckets were skipped,
  // any earlier one) trail the on-time records.
  while (!held_back_.empty() && held_back_.begin()->first <= bucket.index) {
    for (const auto& record : held_back_.begin()->second) sink(record);
    held_back_.erase(held_back_.begin());
  }
}

std::vector<net::ChurnEvent> fetch_churn(const net::RoutingState& routing,
                                         const ChaosInjector* chaos,
                                         util::MinuteTime from,
                                         util::MinuteTime to) {
  if (!chaos || !chaos->config().any_control_plane_chaos()) {
    return routing.churn_between(from, to);
  }
  const auto fate_of = [&](const net::ChurnEvent& ev) {
    return chaos->churn_fate(ev.location, ev.prefix.network, ev.time,
                             static_cast<std::uint8_t>(ev.kind));
  };
  std::vector<net::ChurnEvent> out;
  for (const auto& ev : routing.churn_between(from, to)) {
    if (fate_of(ev) == ChaosInjector::ChurnFate::Deliver) out.push_back(ev);
  }
  // Delayed events surface D minutes late: an event at time T is delivered
  // by the fetch whose window covers T + D.
  const int delay = chaos->config().churn_feed_delay_minutes;
  if (chaos->config().churn_feed_delay_rate > 0.0) {
    const util::MinuteTime dfrom{from.minutes - delay};
    const util::MinuteTime dto{to.minutes - delay};
    for (const auto& ev : routing.churn_between(dfrom, dto)) {
      if (fate_of(ev) == ChaosInjector::ChurnFate::Delay) out.push_back(ev);
    }
  }
  return out;
}

}  // namespace blameit::sim
