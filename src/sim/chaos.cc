#include "sim/chaos.h"

#include <stdexcept>

namespace blameit::sim {

namespace {

// Distinct stream tags so the loss / timeout / silent / telemetry draws are
// statistically independent even for the same probe identity.
constexpr std::uint64_t kLossTag = 0x10535;
constexpr std::uint64_t kHopTag = 0x40953;
constexpr std::uint64_t kDupTag = 0xD0BBE;
constexpr std::uint64_t kLateTag = 0x1A7E0;

}  // namespace

ChaosInjector::ChaosInjector(ChaosConfig config, obs::Registry* registry)
    : config_(config) {
  auto valid_rate = [](double r) { return r >= 0.0 && r <= 1.0; };
  if (!valid_rate(config_.probe_loss_rate) ||
      !valid_rate(config_.hop_timeout_rate) ||
      !valid_rate(config_.silent_as_rate) ||
      !valid_rate(config_.duplicate_record_rate) ||
      !valid_rate(config_.late_record_rate) ||
      config_.late_record_delay_buckets < 1) {
    throw std::invalid_argument{"ChaosConfig: rate outside [0, 1]"};
  }
  lost_c_ = obs::counter(registry, "chaos.probes_lost");
  outage_c_ = obs::counter(registry, "chaos.outage_probes");
  timeout_c_ = obs::counter(registry, "chaos.hop_timeouts");
  silent_c_ = obs::counter(registry, "chaos.silent_hops");
  dup_c_ = obs::counter(registry, "chaos.records_duplicated");
  late_c_ = obs::counter(registry, "chaos.records_delayed");
}

bool ChaosInjector::in_outage(util::MinuteTime t) const noexcept {
  for (const auto& window : config_.outages) {
    if (window.active_at(t)) return true;
  }
  return false;
}

double ChaosInjector::roll(std::uint64_t stream_tag, std::uint64_t a,
                           std::uint64_t b, std::uint64_t c) const {
  util::Rng rng{util::hash_combine(
      config_.seed,
      util::hash_combine(stream_tag,
                         util::hash_combine(a, util::hash_combine(b, c))))};
  return rng.uniform();
}

bool ChaosInjector::probe_lost(net::CloudLocationId from, net::Slash24 target,
                               util::MinuteTime t, int attempt) const {
  if (config_.probe_loss_rate <= 0.0) return false;
  const std::uint64_t who =
      (std::uint64_t{from.value} << 32) | std::uint64_t{target.block};
  return roll(kLossTag, who, static_cast<std::uint64_t>(t.minutes),
              static_cast<std::uint64_t>(attempt)) < config_.probe_loss_rate;
}

ChaosInjector::HopFate ChaosInjector::hop_fate(net::CloudLocationId from,
                                               net::Slash24 target,
                                               util::MinuteTime t, int attempt,
                                               std::size_t hop_index) const {
  if (config_.hop_timeout_rate <= 0.0 && config_.silent_as_rate <= 0.0) {
    return HopFate::Respond;
  }
  const std::uint64_t who =
      (std::uint64_t{from.value} << 32) | std::uint64_t{target.block};
  const std::uint64_t when =
      (static_cast<std::uint64_t>(t.minutes) << 16) |
      (static_cast<std::uint64_t>(attempt) & 0xFFFF);
  const double u = roll(kHopTag, who, when, hop_index);
  // One draw decides both fates: [0, timeout) → Timeout,
  // [timeout, timeout + silent) → Silent, rest → Respond.
  if (u < config_.hop_timeout_rate) return HopFate::Timeout;
  if (u < config_.hop_timeout_rate + config_.silent_as_rate) {
    return HopFate::Silent;
  }
  return HopFate::Respond;
}

bool ChaosInjector::duplicate_record(util::TimeBucket bucket,
                                     std::uint64_t record_index) const {
  if (config_.duplicate_record_rate <= 0.0) return false;
  const bool dup =
      roll(kDupTag, static_cast<std::uint64_t>(bucket.index), record_index,
           0) < config_.duplicate_record_rate;
  if (dup) obs::add(dup_c_);
  return dup;
}

bool ChaosInjector::late_record(util::TimeBucket bucket,
                                std::uint64_t record_index) const {
  if (config_.late_record_rate <= 0.0) return false;
  const bool late =
      roll(kLateTag, static_cast<std::uint64_t>(bucket.index), record_index,
           0) < config_.late_record_rate;
  if (late) obs::add(late_c_);
  return late;
}

ChaosRecordFeed::ChaosRecordFeed(const ChaosInjector* chaos, Feed inner)
    : chaos_(chaos), inner_(std::move(inner)) {
  if (!chaos_ || !inner_) {
    throw std::invalid_argument{"ChaosRecordFeed: null dependency"};
  }
}

void ChaosRecordFeed::operator()(util::TimeBucket bucket, const Sink& sink) {
  std::uint64_t index = 0;
  inner_(bucket, [&](const analysis::RttRecord& record) {
    const std::uint64_t i = index++;
    if (chaos_->late_record(bucket, i)) {
      // Held back: re-delivered with this bucket's later siblings, by which
      // time the ingest watermark has closed the record's own bucket.
      held_back_[bucket.index + chaos_->config().late_record_delay_buckets]
          .push_back(record);
      ++delayed_n_;
      return;
    }
    sink(record);
    if (chaos_->duplicate_record(bucket, i)) {
      sink(record);
      ++duplicated_;
    }
  });
  // Late arrivals scheduled for this bucket (or, if buckets were skipped,
  // any earlier one) trail the on-time records.
  while (!held_back_.empty() && held_back_.begin()->first <= bucket.index) {
    for (const auto& record : held_back_.begin()->second) sink(record);
    held_back_.erase(held_back_.begin());
  }
}

}  // namespace blameit::sim
