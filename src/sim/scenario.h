// Incident scenarios with ground truth: the five §6.3 case studies and a
// generated suite mirroring the paper's 88 manually-investigated incidents.
//
// Each Incident knows which segment (and which AS) is truly at fault, so
// localization accuracy can be scored exactly — the role the network
// engineers' manual reports play in the paper's validation.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "net/topology.h"
#include "sim/fault.h"
#include "sim/telemetry.h"

namespace blameit::sim {

/// BGP-level realization of an incident (Rimondini et al.: routing events
/// correlate with large RTT changes). Instead of (or on top of) a latency
/// fault, the incident rewires routes mid-run, so the pipeline's learned
/// per-middle-segment baselines are invalidated while the incident is live.
enum class RouteDisruption : std::uint8_t {
  None,       ///< plain latency fault / traffic override
  Hijack,     ///< paths abruptly re-homed through an AS that was not there
  PathLeak,   ///< paths replaced by the longest valley-free alternate
  FlapStorm,  ///< paths oscillate best<->alternate every flap period
};

[[nodiscard]] std::string_view to_string(RouteDisruption d) noexcept;

struct Incident {
  std::string name;
  FaultKind kind{};  ///< ground-truth segment category
  /// Ground-truth culprit AS. The cloud AS for cloud faults, the faulty
  /// transit for middle faults, the eyeball for client faults. Empty for
  /// incidents where only the category is well-defined (e.g. anycast
  /// re-steering, where no single AS "failed").
  std::optional<net::AsId> culprit_as;

  net::Region region{};                  ///< where the impact lands
  net::CloudLocationId cloud_location;   ///< kind == CloudLocation
  net::AsId target_as;                   ///< kind == MiddleAs / ClientAs
  net::Slash24 block;                    ///< kind == ClientBlock

  util::MinuteTime start;
  int duration_minutes = 0;
  double added_ms = 0.0;

  /// When true the incident is realized as a TrafficOverride (anycast
  /// re-steering) instead of a latency fault (§6.3 case 4).
  bool via_override = false;
  net::CloudLocationId override_to;  ///< destination edge when via_override

  // --- BGP instability realization (disruption != None; kind must be
  // MiddleAs: the routing plane is the middle segment). ------------------
  RouteDisruption disruption = RouteDisruption::None;
  /// Cloud location whose routes are rewired. Must be resolved (via
  /// resolve_route_disruption) before apply.
  net::CloudLocationId disrupt_location;
  /// How many of the region's announced prefixes are affected (0 = all).
  int disrupt_prefix_count = 0;
  /// FlapStorm only: minutes between best->alternate->best flips.
  int flap_period_minutes = 30;

  [[nodiscard]] util::MinuteTime end() const noexcept {
    return start.plus_minutes(duration_minutes);
  }
};

/// Everything apply_incident may need to install an incident. `injector` is
/// always required; `generator` only for via_override incidents; a mutable
/// `topology` (for its RoutingState and alternate paths) only for
/// route-disruption incidents. A missing required sink is a hard error
/// naming the incident — silently skipping would let the run score against
/// a ground truth that was never injected.
struct ApplyTargets {
  FaultInjector* injector = nullptr;
  TelemetryGenerator* generator = nullptr;
  net::Topology* topology = nullptr;
};

void apply_incident(const Incident& incident, const ApplyTargets& targets);
void apply_incidents(const std::vector<Incident>& incidents,
                     const ApplyTargets& targets);

/// Legacy convenience overloads (no routing sink — route-disruption
/// incidents are a hard error through these).
void apply_incident(const Incident& incident, FaultInjector& injector,
                    TelemetryGenerator* generator);

void apply_incidents(const std::vector<Incident>& incidents,
                     FaultInjector& injector, TelemetryGenerator* generator);

/// Fills the derived ground-truth fields of a route-disruption incident:
/// disrupt_location (when unset: the first location of the region) and the
/// culprit — deterministically, the most common AS that appears on the
/// disrupted alternates but not on the paths they replace. Hijack/PathLeak
/// set culprit_as; FlapStorm leaves culprit_as empty (no single AS failed,
/// only the category is well-defined) but still sets target_as so scoring
/// can find attributable quartets. Throws when the incident is not a
/// disruption, or no (location, prefix) pair has an alternate path.
void resolve_route_disruption(const net::Topology& topology,
                              Incident& incident);

/// Transits in `region` whose paths never dominate a single location
/// (per-location path share <= 0.42). An AS carrying more than τ of a
/// location's paths is structurally indistinguishable from the cloud in the
/// passive view; at production scale no AS dominates a location, so
/// synthetic middle faults should be drawn from this set.
[[nodiscard]] std::vector<net::AsId> non_dominant_transits(
    const net::Topology& topology, net::Region region);

/// The five real-world case studies of §6.3, transplanted onto the synthetic
/// topology: Brazil cloud maintenance, US peering (middle) fault, Australia
/// cloud overload, East Asia → US West anycast shift, Italy client-ISP
/// maintenance. `first_start` is when the first incident begins; they are
/// spaced out so each can be judged in isolation.
[[nodiscard]] std::vector<Incident> make_case_studies(
    const net::Topology& topology, util::MinuteTime first_start);

struct IncidentSuiteConfig {
  int count = 88;
  std::uint64_t seed = 2019;
  util::MinuteTime first_start;
  /// Idle gap between consecutive incident starts in the same region.
  int min_gap_minutes = 30;
  /// Duration range (minutes); drawn log-uniformly for a long-tailed mix.
  int min_duration_minutes = 45;
  int max_duration_minutes = 360;
  /// Category mix (normalized internally).
  double cloud_weight = 0.10;
  double middle_weight = 0.45;
  double client_as_weight = 0.30;
  double client_block_weight = 0.15;
};

/// Generates a deterministic validation suite of `count` incidents with the
/// configured category mix; concurrent incidents never share a region, so
/// ground truth stays unambiguous.
[[nodiscard]] std::vector<Incident> make_incident_suite(
    const net::Topology& topology, const IncidentSuiteConfig& config);

}  // namespace blameit::sim
