// Incident scenarios with ground truth: the five §6.3 case studies and a
// generated suite mirroring the paper's 88 manually-investigated incidents.
//
// Each Incident knows which segment (and which AS) is truly at fault, so
// localization accuracy can be scored exactly — the role the network
// engineers' manual reports play in the paper's validation.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "net/topology.h"
#include "sim/fault.h"
#include "sim/telemetry.h"

namespace blameit::sim {

struct Incident {
  std::string name;
  FaultKind kind{};  ///< ground-truth segment category
  /// Ground-truth culprit AS. The cloud AS for cloud faults, the faulty
  /// transit for middle faults, the eyeball for client faults. Empty for
  /// incidents where only the category is well-defined (e.g. anycast
  /// re-steering, where no single AS "failed").
  std::optional<net::AsId> culprit_as;

  net::Region region{};                  ///< where the impact lands
  net::CloudLocationId cloud_location;   ///< kind == CloudLocation
  net::AsId target_as;                   ///< kind == MiddleAs / ClientAs
  net::Slash24 block;                    ///< kind == ClientBlock

  util::MinuteTime start;
  int duration_minutes = 0;
  double added_ms = 0.0;

  /// When true the incident is realized as a TrafficOverride (anycast
  /// re-steering) instead of a latency fault (§6.3 case 4).
  bool via_override = false;
  net::CloudLocationId override_to;  ///< destination edge when via_override

  [[nodiscard]] util::MinuteTime end() const noexcept {
    return start.plus_minutes(duration_minutes);
  }
};

/// Installs an incident into the fault injector (and, for re-steering
/// incidents, the telemetry generator). `generator` may be null when the
/// suite contains no override incidents.
void apply_incident(const Incident& incident, FaultInjector& injector,
                    TelemetryGenerator* generator);

void apply_incidents(const std::vector<Incident>& incidents,
                     FaultInjector& injector, TelemetryGenerator* generator);

/// The five real-world case studies of §6.3, transplanted onto the synthetic
/// topology: Brazil cloud maintenance, US peering (middle) fault, Australia
/// cloud overload, East Asia → US West anycast shift, Italy client-ISP
/// maintenance. `first_start` is when the first incident begins; they are
/// spaced out so each can be judged in isolation.
[[nodiscard]] std::vector<Incident> make_case_studies(
    const net::Topology& topology, util::MinuteTime first_start);

struct IncidentSuiteConfig {
  int count = 88;
  std::uint64_t seed = 2019;
  util::MinuteTime first_start;
  /// Idle gap between consecutive incident starts in the same region.
  int min_gap_minutes = 30;
  /// Duration range (minutes); drawn log-uniformly for a long-tailed mix.
  int min_duration_minutes = 45;
  int max_duration_minutes = 360;
  /// Category mix (normalized internally).
  double cloud_weight = 0.10;
  double middle_weight = 0.45;
  double client_as_weight = 0.30;
  double client_block_weight = 0.15;
};

/// Generates a deterministic validation suite of `count` incidents with the
/// configured category mix; concurrent incidents never share a region, so
/// ground truth stays unambiguous.
[[nodiscard]] std::vector<Incident> make_incident_suite(
    const net::Topology& topology, const IncidentSuiteConfig& config);

}  // namespace blameit::sim
