// Client activity model: how many clients in each /24 are active in each
// 5-minute bucket, and what device class they use.
//
// Reproduces the temporal structure the paper observes (§2.2): a diurnal
// pattern mixing enterprise (work-hours-heavy) and home (evening-heavy)
// connectivity, damped work activity on weekends, and Zipf-skewed activity
// across blocks (§2.4: most affected clients concentrate in few prefixes).
#pragma once

#include "net/device.h"
#include "net/topology.h"
#include "util/rng.h"
#include "util/time.h"

namespace blameit::sim {

using net::DeviceClass;
using net::kAllDeviceClasses;

struct PopulationConfig {
  /// Expected active clients in an average block at the daily peak. Sized so
  /// that (after the Zipf skew) a median block's quartets carry tens of RTT
  /// samples, as in the paper (§2.1).
  double peak_clients_per_block = 60.0;
  /// Fraction of connections made from mobile devices.
  double mobile_share = 0.35;
  /// RTT samples (TCP connections) contributed per active client per bucket.
  double samples_per_client = 2.5;
  /// Probability that a block also connects to its secondary in-region
  /// location within the same bucket (gives Algorithm 1 its "good RTT to
  /// another cloud node" ambiguity signal).
  double secondary_connect_probability = 0.35;
};

/// Deterministic activity model over (block, bucket, device).
class Population {
 public:
  Population(const net::Topology* topology, PopulationConfig config,
             std::uint64_t seed);

  /// Expected number of active clients (before device split).
  [[nodiscard]] double active_clients(const net::ClientBlock& block,
                                      util::TimeBucket bucket) const;

  /// Expected active clients of one device class.
  [[nodiscard]] double active_clients(const net::ClientBlock& block,
                                      util::TimeBucket bucket,
                                      DeviceClass device) const;

  /// Number of RTT samples a quartet collects (integer draw, deterministic
  /// for a given (block, bucket, device)).
  [[nodiscard]] int sample_count(const net::ClientBlock& block,
                                 util::TimeBucket bucket,
                                 DeviceClass device) const;

  /// Whether the block also connects to its secondary location this bucket.
  [[nodiscard]] bool connects_to_secondary(const net::ClientBlock& block,
                                           util::TimeBucket bucket) const;

  /// Diurnal multiplier in (0, 1]; exposed for tests and the Fig 3 bench.
  [[nodiscard]] double diurnal_factor(const net::ClientBlock& block,
                                      util::MinuteTime t) const;

  [[nodiscard]] const PopulationConfig& config() const noexcept {
    return config_;
  }

 private:
  const net::Topology* topology_;
  PopulationConfig config_;
  std::uint64_t seed_;
  double total_weight_ = 1.0;
};

}  // namespace blameit::sim
