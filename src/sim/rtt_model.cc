#include "sim/rtt_model.h"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace blameit::sim {

RttModel::RttModel(const net::Topology* topology, const FaultInjector* faults,
                   RttModelConfig config)
    : topology_(topology), faults_(faults), config_(config) {
  if (!topology_ || !faults_) {
    throw std::invalid_argument{"RttModel: null topology or fault injector"};
  }
  if (config_.jitter_sigma < 0.0 || config_.outlier_probability < 0.0 ||
      config_.outlier_probability > 1.0) {
    throw std::invalid_argument{"RttModelConfig: invalid noise parameters"};
  }
}

double RttModel::congestion_factor(util::MinuteTime t) const {
  // Smooth evening peak (~21:00) used to modulate client/middle congestion.
  const double hour = static_cast<double>(t.minute_of_day()) / 60.0;
  const double x = (hour - 21.0) / 3.5;
  return std::exp(-x * x);
}

SegmentBreakdown RttModel::breakdown(net::CloudLocationId location,
                                     const net::ClientBlock& block,
                                     DeviceClass device,
                                     util::MinuteTime t) const {
  const auto* route = topology_->routing().route_for(location, block.block, t);
  if (!route) {
    throw std::invalid_argument{"RttModel: no route from " +
                                location.to_string() + " to " +
                                block.block.to_string()};
  }
  return breakdown(location, *route, block, device, t);
}

SegmentBreakdown RttModel::breakdown(net::CloudLocationId location,
                                     const net::RouteEntry& route,
                                     const net::ClientBlock& block,
                                     DeviceClass device,
                                     util::MinuteTime t) const {
  const auto& loc = topology_->location(location);
  const auto middle = route.middle_ases();
  const auto delays =
      faults_->delays_for(location, route, block.block, block.client_as, t);

  const double congestion = congestion_factor(t);

  SegmentBreakdown out;
  out.cloud_ms = loc.cloud_segment_ms + delays.cloud_ms;

  // Middle AS i's contribution: the link that reaches it from the previous
  // AS on the path, congestion, and any injected fault inside it.
  out.middle_ms.reserve(middle.size());
  const auto& graph = topology_->graph();
  for (std::size_t i = 0; i < middle.size(); ++i) {
    const net::AsId prev = route.full_path[i];  // full_path[0] is the cloud
    const auto link = graph.link_latency(prev, middle[i]);
    if (!link) {
      throw std::logic_error{"RttModel: route crosses missing link"};
    }
    const double base =
        *link * (1.0 + config_.middle_congestion_amplitude * congestion);
    out.middle_ms.push_back(base + delays.middle_ms[i]);
  }

  // Client segment: the final link into the eyeball AS, the last-mile access
  // latency (device-dependent), congestion, and client-side faults.
  double client = block.access_latency_ms;
  if (device == DeviceClass::Mobile) client += block.mobile_extra_ms;
  if (route.full_path.size() >= 2) {
    const net::AsId last_middle =
        route.full_path[route.full_path.size() - 2];
    const auto link = graph.link_latency(last_middle, route.client_as());
    if (!link) {
      throw std::logic_error{"RttModel: missing final link into client AS"};
    }
    client += *link;
  }
  client *= 1.0 + config_.client_congestion_amplitude * congestion *
                      (1.0 - block.enterprise_fraction);
  out.client_ms = client + delays.client_ms;
  return out;
}

double RttModel::sample(const SegmentBreakdown& breakdown,
                        util::Rng& rng) const {
  double rtt = breakdown.total() *
               rng.lognormal(0.0, config_.jitter_sigma);
  if (rng.chance(config_.outlier_probability)) {
    rtt *= rng.uniform(config_.outlier_min_factor, config_.outlier_max_factor);
  }
  return rtt;
}

double RttModel::sample_mean(const SegmentBreakdown& breakdown, int n,
                             util::Rng& rng) const {
  if (n <= 0) return 0.0;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += sample(breakdown, rng);
  return sum / n;
}

}  // namespace blameit::sim
