// Measurement-plane chaos: seeded, deterministic fault injection for the
// ACTIVE measurement path (traceroutes and telemetry records), as opposed to
// sim::FaultInjector which injects latency into the NETWORK itself.
//
// The paper's active phase lives with a messy measurement plane — probes get
// lost, traceroutes time out mid-path and return only a prefix, some ASes
// never answer TTL-expired probes (their contribution silently folds into
// the next responding hop), telemetry records arrive duplicated or late, and
// occasionally the whole probing engine is down for maintenance (§5.2,
// §6.4). ChaosInjector models exactly those failures, with ground truth
// still known (the underlying sim::Fault schedule is untouched), so the
// hardened pipeline's behavior under measurement noise can be scored.
//
// Determinism contract: every chaos decision derives from a stateless hash
// of (seed, event identity) — the same ChaosConfig produces the same losses
// and truncations regardless of thread count, call order, or what other
// consumers drew. A default-constructed ChaosConfig (all rates zero, no
// outages) is inert: engines consulting an inert injector behave
// bit-identically to engines with no injector at all.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "analysis/record.h"
#include "net/bgp.h"
#include "net/cloud.h"
#include "net/ipv4.h"
#include "obs/registry.h"
#include "util/rng.h"
#include "util/time.h"

namespace blameit::sim {

/// A window in which the probing engine as a whole is down (deploys,
/// hardware maintenance): every traceroute issued inside it is lost.
struct OutageWindow {
  util::MinuteTime start;
  int duration_minutes = 0;

  [[nodiscard]] constexpr bool active_at(util::MinuteTime t) const noexcept {
    return t >= start && t < start.plus_minutes(duration_minutes);
  }
};

struct ChaosConfig {
  std::uint64_t seed = 0xC4A05u;

  // --- traceroute plane ---
  /// Probability a whole traceroute is lost (no hops at all). Retryable:
  /// each attempt draws an independent fate.
  double probe_loss_rate = 0.0;
  /// Per-hop probability the traceroute times out AT this hop: the result is
  /// truncated to the hops before it (a partial path that never reaches the
  /// client).
  double hop_timeout_rate = 0.0;
  /// Per-hop probability the AS silently drops TTL-expired probes: the hop
  /// is missing from the result and its latency folds into the next
  /// responding hop's contribution (the path itself continues).
  double silent_as_rate = 0.0;
  /// Whole-engine outage windows; probes inside them are always lost.
  std::vector<OutageWindow> outages;

  // --- telemetry plane ---
  /// Probability a telemetry record is emitted twice (at-least-once delivery
  /// upstream of the analytics cluster).
  double duplicate_record_rate = 0.0;
  /// Probability a record is held back and re-delivered `late_record_delay_
  /// buckets` later — far enough past the ingest watermark's lateness
  /// allowance to exercise the late-drop path.
  double late_record_rate = 0.0;
  int late_record_delay_buckets = 3;

  // --- control plane (BGP listener feed) ---
  /// Probability a churn event never reaches the listener (session reset,
  /// collector gap). The routing plane itself is untouched — only the FEED
  /// is lossy, so the pipeline must degrade to its churn-blind behavior.
  double churn_feed_loss_rate = 0.0;
  /// Probability a churn event is delivered `churn_feed_delay_minutes` late
  /// (it surfaces in whatever listener fetch window covers the deferred
  /// time).
  double churn_feed_delay_rate = 0.0;
  int churn_feed_delay_minutes = 30;

  [[nodiscard]] bool any_probe_chaos() const noexcept {
    return probe_loss_rate > 0.0 || hop_timeout_rate > 0.0 ||
           silent_as_rate > 0.0 || !outages.empty();
  }
  [[nodiscard]] bool any_telemetry_chaos() const noexcept {
    return duplicate_record_rate > 0.0 || late_record_rate > 0.0;
  }
  [[nodiscard]] bool any_control_plane_chaos() const noexcept {
    return churn_feed_loss_rate > 0.0 || churn_feed_delay_rate > 0.0;
  }
  [[nodiscard]] bool enabled() const noexcept {
    return any_probe_chaos() || any_telemetry_chaos() ||
           any_control_plane_chaos();
  }
};

/// Answers "does THIS probe / hop / record fail?" deterministically. Const
/// methods are thread-safe: no mutable state, every query re-derives its RNG
/// from the event identity. Counters (when a registry is attached) are
/// atomic.
class ChaosInjector {
 public:
  explicit ChaosInjector(ChaosConfig config = {},
                         obs::Registry* registry = nullptr);

  [[nodiscard]] const ChaosConfig& config() const noexcept { return config_; }

  /// True when `t` falls inside a configured engine outage window.
  [[nodiscard]] bool in_outage(util::MinuteTime t) const noexcept;

  /// Whole-probe loss for attempt `attempt` of a traceroute. Independent
  /// draws per attempt — retries genuinely re-roll.
  [[nodiscard]] bool probe_lost(net::CloudLocationId from, net::Slash24 target,
                                util::MinuteTime t, int attempt) const;

  /// Fate of one hop of a traceroute (hop_index counts from the first
  /// middle AS; the client hop is the last index).
  enum class HopFate : std::uint8_t {
    Respond,  ///< hop answers normally
    Silent,   ///< AS never answers; contribution folds into the next hop
    Timeout,  ///< traceroute gives up here; result truncated to the prefix
  };
  [[nodiscard]] HopFate hop_fate(net::CloudLocationId from,
                                 net::Slash24 target, util::MinuteTime t,
                                 int attempt, std::size_t hop_index) const;

  // Telemetry-record fates, indexed by the record's position in its bucket
  // feed (the feed order is itself deterministic).
  [[nodiscard]] bool duplicate_record(util::TimeBucket bucket,
                                      std::uint64_t record_index) const;
  [[nodiscard]] bool late_record(util::TimeBucket bucket,
                                 std::uint64_t record_index) const;

  /// Fate of one BGP churn event in the listener feed, keyed on the event's
  /// identity (location, announced-prefix network, time, kind) so every
  /// consumer of the same event sees the same fate.
  enum class ChurnFate : std::uint8_t {
    Deliver,  ///< surfaces in its own fetch window
    Drop,     ///< never surfaces
    Delay,    ///< surfaces churn_feed_delay_minutes late
  };
  [[nodiscard]] ChurnFate churn_fate(net::CloudLocationId location,
                                     std::uint32_t prefix_network,
                                     util::MinuteTime t,
                                     std::uint8_t kind) const;

  // Counter hooks for the consuming engines (null-safe).
  void count_lost() const noexcept { obs::add(lost_c_); }
  void count_outage() const noexcept { obs::add(outage_c_); }
  void count_timeout() const noexcept { obs::add(timeout_c_); }
  void count_silent() const noexcept { obs::add(silent_c_); }

 private:
  [[nodiscard]] double roll(std::uint64_t stream_tag, std::uint64_t a,
                            std::uint64_t b, std::uint64_t c) const;

  ChaosConfig config_;
  // Instruments (null without a registry). Counters are updated from const
  // methods; the instruments themselves are atomic.
  obs::Counter* lost_c_ = nullptr;
  obs::Counter* outage_c_ = nullptr;
  obs::Counter* timeout_c_ = nullptr;
  obs::Counter* silent_c_ = nullptr;
  obs::Counter* dup_c_ = nullptr;
  obs::Counter* late_c_ = nullptr;
};

/// Wraps a per-bucket record feed (the StreamingQuartetSource input) with
/// duplication and late re-delivery. Late records are held back and appended
/// to the feed of a later bucket — by then the ingest watermark has moved
/// past them, so they exercise the engine's late-drop accounting. Stateful
/// (the hold-back buffer) and therefore NOT thread-safe; the streaming
/// source pulls buckets serially, which is the supported use.
class ChaosRecordFeed {
 public:
  using Sink = std::function<void(const analysis::RttRecord&)>;
  using Feed = std::function<void(util::TimeBucket, const Sink&)>;

  ChaosRecordFeed(const ChaosInjector* chaos, Feed inner);

  void operator()(util::TimeBucket bucket, const Sink& sink);

  [[nodiscard]] std::uint64_t duplicated() const noexcept {
    return duplicated_;
  }
  [[nodiscard]] std::uint64_t delayed() const noexcept { return delayed_n_; }

 private:
  const ChaosInjector* chaos_;
  Feed inner_;
  std::map<std::int64_t, std::vector<analysis::RttRecord>> held_back_;
  std::uint64_t duplicated_ = 0;
  std::uint64_t delayed_n_ = 0;
};

/// One BGP-listener fetch over [from, to) with churn-feed chaos applied:
/// on-time events in the window that were neither dropped nor delayed, plus
/// delayed events whose deferred delivery time lands in the window. With a
/// null or inert injector this is exactly `routing.churn_between(from, to)`.
/// Stateless — the same window query always returns the same events, so
/// restart recovery replays the feed identically.
[[nodiscard]] std::vector<net::ChurnEvent> fetch_churn(
    const net::RoutingState& routing, const ChaosInjector* chaos,
    util::MinuteTime from, util::MinuteTime to);

}  // namespace blameit::sim
