// Fault model: latency inflations targeted at one network segment, with a
// start time, duration, magnitude, and optional path scoping.
//
// Ground truth is known by construction — each fault names the culprit —
// which is what lets the benches score BlameIt's localization exactly, the
// role the paper's 88 manually-investigated incidents play (§6.3).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "net/asn.h"
#include "net/bgp.h"
#include "net/cloud.h"
#include "net/ipv4.h"
#include "util/time.h"

namespace blameit::sim {

/// Which segment a fault lives in. Mirrors the paper's coarse segmentation
/// (§3.1); MiddleAs faults name a specific transit AS (the active phase's
/// localization target), ClientBlock scopes a client fault to one /24.
enum class FaultKind : std::uint8_t {
  CloudLocation,  ///< inside the cloud at one edge location (server/network)
  MiddleAs,       ///< inside one transit AS
  ClientAs,       ///< inside one eyeball ISP (affects all its blocks)
  ClientBlock,    ///< one /24 only (e.g., a last-mile issue)
};

[[nodiscard]] std::string_view to_string(FaultKind k) noexcept;

struct Fault {
  FaultKind kind{};
  /// Target identity; which field is meaningful depends on `kind`.
  net::CloudLocationId cloud_location;  ///< CloudLocation faults
  net::AsId as;                         ///< MiddleAs / ClientAs faults
  net::Slash24 block;                   ///< ClientBlock faults

  double added_ms = 0.0;  ///< RTT inflation contributed by the faulty segment
  util::MinuteTime start;
  int duration_minutes = 0;

  /// Optional scoping for MiddleAs faults: the paper notes a large AS may be
  /// degraded on some paths but not others (§3.1). When set, the fault only
  /// affects traffic observed from this cloud location.
  std::optional<net::CloudLocationId> only_via_location;

  std::string label;  ///< human-readable tag for reports

  [[nodiscard]] util::MinuteTime end() const noexcept {
    return start.plus_minutes(duration_minutes);
  }
  [[nodiscard]] bool active_at(util::MinuteTime t) const noexcept {
    return t >= start && t < end();
  }
};

/// Per-AS latency additions applying to one path at one instant, produced by
/// the injector and consumed by the RTT model and traceroute engine.
struct PathFaultDelays {
  double cloud_ms = 0.0;
  /// Parallel to the route's middle ASes: middle_ms[i] is the extra latency
  /// inside the i-th middle AS.
  std::vector<double> middle_ms;
  double client_ms = 0.0;

  [[nodiscard]] double total() const noexcept {
    double sum = cloud_ms + client_ms;
    for (const double m : middle_ms) sum += m;
    return sum;
  }
};

/// Holds the fault schedule and answers "what extra latency applies to this
/// path right now". Indexed by target so per-sample queries stay cheap even
/// with many scheduled faults.
class FaultInjector {
 public:
  void add(Fault fault);

  [[nodiscard]] const std::vector<Fault>& faults() const noexcept {
    return faults_;
  }

  /// Extra latency for traffic from `location` to client `block` (inside
  /// `client_as`) over `route`, at time `t`.
  [[nodiscard]] PathFaultDelays delays_for(
      net::CloudLocationId location, const net::RouteEntry& route,
      net::Slash24 block, net::AsId client_as, util::MinuteTime t) const;

  /// True when any fault is active at `t` (used by fast paths to skip the
  /// per-segment scan).
  [[nodiscard]] bool any_active(util::MinuteTime t) const noexcept;

 private:
  std::vector<Fault> faults_;
  // Index: positions into faults_ by target key, so delays_for only scans
  // faults that could possibly apply to the queried path.
  std::unordered_map<std::uint16_t, std::vector<std::size_t>> by_location_;
  std::unordered_map<net::AsId, std::vector<std::size_t>> by_middle_as_;
  std::unordered_map<net::AsId, std::vector<std::size_t>> by_client_as_;
  std::unordered_map<net::Slash24, std::vector<std::size_t>> by_block_;
};

}  // namespace blameit::sim
