#include "sim/population.h"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

namespace blameit::sim {

namespace {

// Work-hours curve: peaks around 11:00-15:00 local, low at night.
double work_curve(double hour) {
  const double x = (hour - 13.0) / 5.0;
  return 0.1 + 0.9 * std::exp(-x * x);
}

// Home curve: peaks in the evening (~20:30), stays moderate at night —
// the paper observes badness is consistently higher at night because home
// ISPs dominate then (§2.2).
double home_curve(double hour) {
  const double x = (hour - 20.5) / 4.0;
  const double evening = std::exp(-x * x);
  const double late_night = 0.35 * std::exp(-std::pow((hour - 1.5) / 3.0, 2));
  return 0.15 + 0.85 * std::max(evening, late_night);
}

}  // namespace

Population::Population(const net::Topology* topology, PopulationConfig config,
                       std::uint64_t seed)
    : topology_(topology), config_(config), seed_(seed) {
  if (!topology_) throw std::invalid_argument{"Population: null topology"};
  if (config_.peak_clients_per_block <= 0.0 || config_.mobile_share < 0.0 ||
      config_.mobile_share > 1.0 || config_.samples_per_client <= 0.0) {
    throw std::invalid_argument{"PopulationConfig: invalid values"};
  }
  total_weight_ = 0.0;
  for (const auto& block : topology_->blocks()) {
    total_weight_ += block.activity_weight;
  }
  if (total_weight_ <= 0.0) {
    throw std::invalid_argument{"Population: topology has no active blocks"};
  }
}

double Population::diurnal_factor(const net::ClientBlock& block,
                                  util::MinuteTime t) const {
  const double hour = static_cast<double>(t.minute_of_day()) / 60.0;
  double work = work_curve(hour);
  if (t.is_weekend()) work *= 0.35;  // weekends damp enterprise traffic
  const double home = home_curve(hour);
  return block.enterprise_fraction * work +
         (1.0 - block.enterprise_fraction) * home;
}

double Population::active_clients(const net::ClientBlock& block,
                                  util::TimeBucket bucket) const {
  // activity_weight is Zipf-skewed across blocks; normalize so an
  // average-weight block peaks near peak_clients_per_block.
  const double base = config_.peak_clients_per_block * block.activity_weight *
                      static_cast<double>(topology_->blocks().size()) /
                      total_weight_;
  return base * diurnal_factor(block, bucket.start());
}

double Population::active_clients(const net::ClientBlock& block,
                                  util::TimeBucket bucket,
                                  DeviceClass device) const {
  const double all = active_clients(block, bucket);
  return device == DeviceClass::Mobile ? all * config_.mobile_share
                                       : all * (1.0 - config_.mobile_share);
}

int Population::sample_count(const net::ClientBlock& block,
                             util::TimeBucket bucket,
                             DeviceClass device) const {
  const double expected =
      active_clients(block, bucket, device) * config_.samples_per_client;
  // Deterministic per-(block, bucket, device) jitter of ±20% around the
  // expectation, so counts vary realistically but replays are identical.
  util::Rng rng{util::hash_combine(
      seed_, util::hash_combine(block.block.block,
                                util::hash_combine(
                                    static_cast<std::uint64_t>(bucket.index),
                                    static_cast<std::uint64_t>(device))))};
  const double jittered = expected * rng.uniform(0.8, 1.2);
  return static_cast<int>(std::floor(jittered));
}

bool Population::connects_to_secondary(const net::ClientBlock& block,
                                       util::TimeBucket bucket) const {
  util::Rng rng{util::hash_combine(
      seed_ ^ 0x5ECu, util::hash_combine(
                          block.block.block,
                          static_cast<std::uint64_t>(bucket.index)))};
  return rng.chance(config_.secondary_connect_probability);
}

}  // namespace blameit::sim
