#include "sim/traceroute.h"

#include <stdexcept>

namespace blameit::sim {

std::vector<std::pair<net::AsId, double>> TracerouteResult::contributions()
    const {
  // Lost / no-route / outage probes carry no per-AS data; guard explicitly
  // so callers can diff whatever came back without checking flags first.
  if (hops.empty()) return {};
  std::vector<std::pair<net::AsId, double>> out;
  out.reserve(hops.size());
  double prev = cloud_ms;
  for (const auto& hop : hops) {
    out.emplace_back(hop.as, hop.cumulative_rtt_ms - prev);
    prev = hop.cumulative_rtt_ms;
  }
  return out;
}

void ProbeAccountant::record(net::CloudLocationId from,
                             util::MinuteTime t) noexcept {
  ++total_;
  ++by_day_[t.day()];
  ++by_location_[from.value];
}

std::uint64_t ProbeAccountant::on_day(int day) const {
  const auto it = by_day_.find(day);
  return it == by_day_.end() ? 0 : it->second;
}

std::uint64_t ProbeAccountant::at_location(net::CloudLocationId loc) const {
  const auto it = by_location_.find(loc.value);
  return it == by_location_.end() ? 0 : it->second;
}

void ProbeAccountant::reset() noexcept {
  total_ = 0;
  succeeded_ = 0;
  by_day_.clear();
  by_location_.clear();
}

TracerouteEngine::TracerouteEngine(const net::Topology* topology,
                                   const RttModel* model,
                                   TracerouteConfig config,
                                   const ChaosInjector* chaos)
    : topology_(topology), model_(model), config_(config), chaos_(chaos) {
  if (!topology_ || !model_) {
    throw std::invalid_argument{"TracerouteEngine: null dependency"};
  }
}

TracerouteResult TracerouteEngine::trace(net::CloudLocationId from,
                                         net::Slash24 target,
                                         util::MinuteTime t, int attempt) {
  accountant_.record(from, t);

  TracerouteResult result;
  result.from = from;
  result.target = target;
  result.time = t;

  if (chaos_ && chaos_->in_outage(t)) {
    result.lost = true;
    result.in_outage = true;
    chaos_->count_outage();
    return result;
  }

  const auto* block = topology_->find_block(target);
  const auto* route =
      block ? topology_->routing().route_for(from, target, t) : nullptr;
  if (!block || !route) {
    result.no_route = true;
    return result;
  }

  if (chaos_ && chaos_->probe_lost(from, target, t, attempt)) {
    result.lost = true;
    chaos_->count_lost();
    return result;
  }

  // Probes measure the same breakdown the passive RTT model uses for
  // non-mobile clients (traceroutes run from servers over the same path).
  const auto breakdown =
      model_->breakdown(from, *route, *block, DeviceClass::NonMobile, t);

  // Per-probe deterministic noise stream. Attempt 0 keeps the historical
  // seed derivation bit-for-bit (chaos-off parity); retries mix the attempt
  // index in so a re-probe is a genuinely fresh measurement.
  std::uint64_t noise_seed = util::hash_combine(
      config_.seed,
      util::hash_combine(static_cast<std::uint64_t>(t.minutes),
                         util::hash_combine(from.value, target.block)));
  if (attempt > 0) {
    noise_seed =
        util::hash_combine(noise_seed, static_cast<std::uint64_t>(attempt));
  }
  util::Rng rng{noise_seed};

  auto noisy = [&](double ms) {
    return ms * rng.lognormal(0.0, config_.hop_noise_sigma);
  };

  result.cloud_ms = noisy(breakdown.cloud_ms);
  double cumulative = result.cloud_ms;
  const auto middle = route->middle_ases();
  const std::size_t path_len = middle.size() + 1;  // + client hop
  for (std::size_t i = 0; i < middle.size(); ++i) {
    cumulative += noisy(breakdown.middle_ms[i]);
    if (chaos_) {
      const auto fate = chaos_->hop_fate(from, target, t, attempt, i);
      if (fate == ChaosInjector::HopFate::Timeout) {
        result.truncated = true;
        chaos_->count_timeout();
        return result;
      }
      if (fate == ChaosInjector::HopFate::Silent) {
        // The AS carries traffic but never answers TTL-expired probes: its
        // latency folds into the next responding hop's contribution and it
        // simply has no entry of its own.
        chaos_->count_silent();
        continue;
      }
    }
    result.hops.push_back(TracerouteHop{middle[i], cumulative});
  }
  cumulative += noisy(breakdown.client_ms);
  if (chaos_) {
    // The client hop not answering — silently or by timeout — is the same
    // observable outcome: the traceroute ends without reaching the target.
    const auto fate = chaos_->hop_fate(from, target, t, attempt, path_len - 1);
    if (fate != ChaosInjector::HopFate::Respond) {
      result.truncated = true;
      chaos_->count_timeout();
      return result;
    }
  }
  result.hops.push_back(TracerouteHop{route->client_as(), cumulative});
  result.reached = true;
  accountant_.record_success();
  return result;
}

}  // namespace blameit::sim
