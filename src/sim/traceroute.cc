#include "sim/traceroute.h"

#include <stdexcept>

namespace blameit::sim {

std::vector<std::pair<net::AsId, double>> TracerouteResult::contributions()
    const {
  std::vector<std::pair<net::AsId, double>> out;
  out.reserve(hops.size());
  double prev = cloud_ms;
  for (const auto& hop : hops) {
    out.emplace_back(hop.as, hop.cumulative_rtt_ms - prev);
    prev = hop.cumulative_rtt_ms;
  }
  return out;
}

void ProbeAccountant::record(net::CloudLocationId from,
                             util::MinuteTime t) noexcept {
  ++total_;
  ++by_day_[t.day()];
  ++by_location_[from.value];
}

std::uint64_t ProbeAccountant::on_day(int day) const {
  const auto it = by_day_.find(day);
  return it == by_day_.end() ? 0 : it->second;
}

std::uint64_t ProbeAccountant::at_location(net::CloudLocationId loc) const {
  const auto it = by_location_.find(loc.value);
  return it == by_location_.end() ? 0 : it->second;
}

void ProbeAccountant::reset() noexcept {
  total_ = 0;
  by_day_.clear();
  by_location_.clear();
}

TracerouteEngine::TracerouteEngine(const net::Topology* topology,
                                   const RttModel* model,
                                   TracerouteConfig config)
    : topology_(topology), model_(model), config_(config) {
  if (!topology_ || !model_) {
    throw std::invalid_argument{"TracerouteEngine: null dependency"};
  }
}

TracerouteResult TracerouteEngine::trace(net::CloudLocationId from,
                                         net::Slash24 target,
                                         util::MinuteTime t) {
  accountant_.record(from, t);

  TracerouteResult result;
  result.from = from;
  result.target = target;
  result.time = t;

  const auto* block = topology_->find_block(target);
  const auto* route =
      block ? topology_->routing().route_for(from, target, t) : nullptr;
  if (!block || !route) {
    result.reached = false;
    return result;
  }

  // Probes measure the same breakdown the passive RTT model uses for
  // non-mobile clients (traceroutes run from servers over the same path).
  const auto breakdown =
      model_->breakdown(from, *route, *block, DeviceClass::NonMobile, t);

  // Per-probe deterministic noise stream.
  util::Rng rng{util::hash_combine(
      config_.seed,
      util::hash_combine(static_cast<std::uint64_t>(t.minutes),
                         util::hash_combine(from.value, target.block)))};

  auto noisy = [&](double ms) {
    return ms * rng.lognormal(0.0, config_.hop_noise_sigma);
  };

  result.cloud_ms = noisy(breakdown.cloud_ms);
  double cumulative = result.cloud_ms;
  const auto middle = route->middle_ases();
  for (std::size_t i = 0; i < middle.size(); ++i) {
    cumulative += noisy(breakdown.middle_ms[i]);
    result.hops.push_back(TracerouteHop{middle[i], cumulative});
  }
  cumulative += noisy(breakdown.client_ms);
  result.hops.push_back(TracerouteHop{route->client_as(), cumulative});
  result.reached = true;
  return result;
}

}  // namespace blameit::sim
