#include "sim/telemetry.h"

#include <cmath>
#include <stdexcept>
#include <unordered_set>
#include <utility>

namespace blameit::sim {

namespace {

std::uint64_t timeline_key(net::CloudLocationId location,
                           const net::Prefix& prefix) noexcept {
  return (std::uint64_t{location.value} << 40) |
         (std::uint64_t{prefix.network} << 8) | prefix.length;
}

}  // namespace

TelemetryGenerator::TelemetryGenerator(const net::Topology* topology,
                                       const FaultInjector* faults,
                                       TelemetryConfig config)
    : topology_(topology),
      config_(config),
      population_(topology, config.population, config.seed),
      model_(topology, faults, config.rtt) {
  if (config_.secondary_volume_fraction < 0.0 ||
      config_.secondary_volume_fraction > 1.0) {
    throw std::invalid_argument{
        "TelemetryConfig: secondary_volume_fraction out of range"};
  }
  // Pre-warm the route-timeline cache for every (location, announced
  // prefix) pair so generation is read-only afterwards and therefore safe
  // to run from multiple threads (see the header's concurrency contract).
  // Overrides can steer any region to any location, hence the full cross
  // product rather than just home locations.
  std::unordered_set<std::uint64_t> prefixes_seen;
  std::vector<net::Prefix> prefixes;
  for (const auto& block : topology_->blocks()) {
    const std::uint64_t pk = (std::uint64_t{block.announced.network} << 8) |
                             block.announced.length;
    if (prefixes_seen.insert(pk).second) prefixes.push_back(block.announced);
  }
  for (const auto& location : topology_->locations()) {
    for (const auto& prefix : prefixes) {
      timeline_cache_.emplace(
          timeline_key(location.id, prefix),
          topology_->routing().timeline(location.id, prefix));
    }
  }
}

void TelemetryGenerator::add_override(TrafficOverride override_event) {
  if (override_event.duration_minutes <= 0) {
    throw std::invalid_argument{"TrafficOverride: duration must be > 0"};
  }
  overrides_.push_back(override_event);
}

void TelemetryGenerator::add_surge(TrafficSurge surge) {
  if (surge.duration_minutes <= 0) {
    throw std::invalid_argument{"TrafficSurge: duration must be > 0"};
  }
  if (surge.multiplier <= 0.0) {
    throw std::invalid_argument{"TrafficSurge: multiplier must be > 0"};
  }
  surges_.push_back(surge);
}

double TelemetryGenerator::surge_factor(net::Region region,
                                        util::MinuteTime t) const noexcept {
  double factor = 1.0;
  for (const auto& s : surges_) {
    if (s.region == region && s.active_at(t)) factor *= s.multiplier;
  }
  return factor;
}

std::vector<net::CloudLocationId> TelemetryGenerator::connected_locations(
    const net::ClientBlock& block, util::TimeBucket bucket) const {
  const auto t = bucket.start();
  for (const auto& ov : overrides_) {
    if (ov.client_region == block.region && ov.active_at(t)) {
      return {ov.to_location};
    }
  }
  const auto& homes = topology_->home_locations(block.block);
  std::vector<net::CloudLocationId> out{homes.front()};
  if (homes.size() > 1 && population_.connects_to_secondary(block, bucket)) {
    out.push_back(homes[1]);
  }
  return out;
}

util::Rng TelemetryGenerator::quartet_rng(const net::ClientBlock& block,
                                          util::TimeBucket bucket,
                                          net::CloudLocationId location,
                                          DeviceClass device) const {
  std::uint64_t h = util::hash_combine(config_.seed, block.block.block);
  h = util::hash_combine(h, static_cast<std::uint64_t>(bucket.index));
  h = util::hash_combine(h, location.value);
  h = util::hash_combine(h, static_cast<std::uint64_t>(device));
  return util::Rng{h};
}

const net::RouteEntry* TelemetryGenerator::route_for(
    net::CloudLocationId location, const net::ClientBlock& block,
    util::MinuteTime t) const {
  const auto it =
      timeline_cache_.find(timeline_key(location, block.announced));
  if (it == timeline_cache_.end()) {
    // Unreachable for topology-owned blocks (the constructor covered the
    // full cross product); resolve directly — without caching — to stay
    // read-only under concurrent generation.
    const auto* timeline =
        topology_->routing().timeline(location, block.announced);
    return timeline ? timeline->route_at(t) : nullptr;
  }
  return it->second ? it->second->route_at(t) : nullptr;
}

void TelemetryGenerator::generate_aggregates(
    util::TimeBucket bucket,
    const std::function<void(const analysis::QuartetKey&, int, double)>& sink)
    const {
  const auto t = bucket.start();
  for (const auto& block : topology_->blocks()) {
    const auto locations = connected_locations(block, bucket);
    const double surge = surge_factor(block.region, t);
    for (std::size_t li = 0; li < locations.size(); ++li) {
      const auto location = locations[li];
      const auto* route = route_for(location, block, t);
      if (!route) continue;
      for (const DeviceClass device : kAllDeviceClasses) {
        int n = population_.sample_count(block, bucket, device);
        if (li > 0) {
          n = static_cast<int>(
              std::floor(n * config_.secondary_volume_fraction));
        }
        if (surge != 1.0) n = static_cast<int>(std::floor(n * surge));
        if (n <= 0) continue;
        auto rng = quartet_rng(block, bucket, location, device);
        const auto breakdown =
            model_.breakdown(location, *route, block, device, t);
        const double mean = model_.sample_mean(breakdown, n, rng);
        sink(analysis::QuartetKey{.block = block.block,
                                  .location = location,
                                  .device = device,
                                  .bucket = bucket},
             n, mean);
      }
    }
  }
}

void TelemetryGenerator::generate_records(
    util::TimeBucket bucket,
    const std::function<void(const analysis::RttRecord&)>& sink) const {
  const auto t = bucket.start();
  for (const auto& block : topology_->blocks()) {
    const auto locations = connected_locations(block, bucket);
    const double surge = surge_factor(block.region, t);
    for (std::size_t li = 0; li < locations.size(); ++li) {
      const auto location = locations[li];
      const auto* route = route_for(location, block, t);
      if (!route) continue;
      for (const DeviceClass device : kAllDeviceClasses) {
        int n = population_.sample_count(block, bucket, device);
        if (li > 0) {
          n = static_cast<int>(
              std::floor(n * config_.secondary_volume_fraction));
        }
        if (surge != 1.0) n = static_cast<int>(std::floor(n * surge));
        if (n <= 0) continue;
        auto rng = quartet_rng(block, bucket, location, device);
        const auto breakdown =
            model_.breakdown(location, *route, block, device, t);
        for (int i = 0; i < n; ++i) {
          analysis::RttRecord record;
          record.time =
              t.plus_minutes(rng.uniform_int(0, util::kBucketMinutes - 1));
          record.location = location;
          record.client_ip = block.block.host(
              static_cast<std::uint8_t>(rng.uniform_int(1, 254)));
          record.device = device;
          record.rtt_ms = model_.sample(breakdown, rng);
          sink(record);
        }
      }
    }
  }
}

void TelemetryGenerator::generate_records_shuffled(
    util::TimeBucket bucket,
    const std::function<void(const analysis::RttRecord&)>& sink) const {
  std::vector<analysis::RttRecord> records;
  generate_records(bucket, [&](const analysis::RttRecord& r) {
    records.push_back(r);
  });
  // Deterministic Fisher–Yates keyed on (seed, bucket): same multiset as
  // generate_records, but arrival order is scrambled the way the hourly
  // storage buckets scramble it (§6.1).
  util::Rng rng{util::hash_combine(config_.seed ^ 0x5817FFull,
                                   static_cast<std::uint64_t>(bucket.index))};
  for (std::size_t i = records.size(); i > 1; --i) {
    const auto j = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(i) - 1));
    std::swap(records[i - 1], records[j]);
  }
  for (const auto& r : records) sink(r);
}

}  // namespace blameit::sim
