#include "sim/telemetry.h"

#include <cmath>
#include <stdexcept>

namespace blameit::sim {

TelemetryGenerator::TelemetryGenerator(const net::Topology* topology,
                                       const FaultInjector* faults,
                                       TelemetryConfig config)
    : topology_(topology),
      config_(config),
      population_(topology, config.population, config.seed),
      model_(topology, faults, config.rtt) {
  if (config_.secondary_volume_fraction < 0.0 ||
      config_.secondary_volume_fraction > 1.0) {
    throw std::invalid_argument{
        "TelemetryConfig: secondary_volume_fraction out of range"};
  }
}

void TelemetryGenerator::add_override(TrafficOverride override_event) {
  if (override_event.duration_minutes <= 0) {
    throw std::invalid_argument{"TrafficOverride: duration must be > 0"};
  }
  overrides_.push_back(override_event);
}

std::vector<net::CloudLocationId> TelemetryGenerator::connected_locations(
    const net::ClientBlock& block, util::TimeBucket bucket) const {
  const auto t = bucket.start();
  for (const auto& ov : overrides_) {
    if (ov.client_region == block.region && ov.active_at(t)) {
      return {ov.to_location};
    }
  }
  const auto& homes = topology_->home_locations(block.block);
  std::vector<net::CloudLocationId> out{homes.front()};
  if (homes.size() > 1 && population_.connects_to_secondary(block, bucket)) {
    out.push_back(homes[1]);
  }
  return out;
}

util::Rng TelemetryGenerator::quartet_rng(const net::ClientBlock& block,
                                          util::TimeBucket bucket,
                                          net::CloudLocationId location,
                                          DeviceClass device) const {
  std::uint64_t h = util::hash_combine(config_.seed, block.block.block);
  h = util::hash_combine(h, static_cast<std::uint64_t>(bucket.index));
  h = util::hash_combine(h, location.value);
  h = util::hash_combine(h, static_cast<std::uint64_t>(device));
  return util::Rng{h};
}

const net::RouteEntry* TelemetryGenerator::route_for(
    net::CloudLocationId location, const net::ClientBlock& block,
    util::MinuteTime t) const {
  const std::uint64_t key = (std::uint64_t{location.value} << 40) |
                            (std::uint64_t{block.announced.network} << 8) |
                            block.announced.length;
  auto it = timeline_cache_.find(key);
  if (it == timeline_cache_.end()) {
    it = timeline_cache_
             .emplace(key,
                      topology_->routing().timeline(location, block.announced))
             .first;
  }
  return it->second ? it->second->route_at(t) : nullptr;
}

void TelemetryGenerator::generate_aggregates(
    util::TimeBucket bucket,
    const std::function<void(const analysis::QuartetKey&, int, double)>& sink)
    const {
  const auto t = bucket.start();
  for (const auto& block : topology_->blocks()) {
    const auto locations = connected_locations(block, bucket);
    for (std::size_t li = 0; li < locations.size(); ++li) {
      const auto location = locations[li];
      const auto* route = route_for(location, block, t);
      if (!route) continue;
      for (const DeviceClass device : kAllDeviceClasses) {
        int n = population_.sample_count(block, bucket, device);
        if (li > 0) {
          n = static_cast<int>(
              std::floor(n * config_.secondary_volume_fraction));
        }
        if (n <= 0) continue;
        auto rng = quartet_rng(block, bucket, location, device);
        const auto breakdown =
            model_.breakdown(location, *route, block, device, t);
        const double mean = model_.sample_mean(breakdown, n, rng);
        sink(analysis::QuartetKey{.block = block.block,
                                  .location = location,
                                  .device = device,
                                  .bucket = bucket},
             n, mean);
      }
    }
  }
}

void TelemetryGenerator::generate_records(
    util::TimeBucket bucket,
    const std::function<void(const analysis::RttRecord&)>& sink) const {
  const auto t = bucket.start();
  for (const auto& block : topology_->blocks()) {
    const auto locations = connected_locations(block, bucket);
    for (std::size_t li = 0; li < locations.size(); ++li) {
      const auto location = locations[li];
      const auto* route = route_for(location, block, t);
      if (!route) continue;
      for (const DeviceClass device : kAllDeviceClasses) {
        int n = population_.sample_count(block, bucket, device);
        if (li > 0) {
          n = static_cast<int>(
              std::floor(n * config_.secondary_volume_fraction));
        }
        if (n <= 0) continue;
        auto rng = quartet_rng(block, bucket, location, device);
        const auto breakdown =
            model_.breakdown(location, *route, block, device, t);
        for (int i = 0; i < n; ++i) {
          analysis::RttRecord record;
          record.time =
              t.plus_minutes(rng.uniform_int(0, util::kBucketMinutes - 1));
          record.location = location;
          record.client_ip = block.block.host(
              static_cast<std::uint8_t>(rng.uniform_int(1, 254)));
          record.device = device;
          record.rtt_ms = model_.sample(breakdown, rng);
          sink(record);
        }
      }
    }
  }
}

}  // namespace blameit::sim
