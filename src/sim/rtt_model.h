// RTT composition model: how a single TCP-handshake RTT (or a traceroute's
// per-hop cumulative latency) is assembled from the cloud, middle, and client
// segment contributions, plus congestion and measurement noise.
//
// The telemetry generator and the traceroute engine both consume this model,
// so passive RTTs and active probe measurements are mutually consistent —
// the property BlameIt's active phase relies on when it compares traceroute
// contributions before and during an incident (§5.2).
#pragma once

#include <vector>

#include "net/topology.h"
#include "sim/fault.h"
#include "sim/population.h"
#include "util/rng.h"
#include "util/time.h"

namespace blameit::sim {

/// Deterministic per-segment breakdown of one path's RTT at one instant
/// (before measurement noise).
struct SegmentBreakdown {
  double cloud_ms = 0.0;
  /// Contribution of each middle AS, parallel to the route's middle_ases():
  /// cost of reaching/traversing that AS (link + internal + fault).
  std::vector<double> middle_ms;
  double client_ms = 0.0;

  [[nodiscard]] double total() const noexcept {
    double sum = cloud_ms + client_ms;
    for (const double m : middle_ms) sum += m;
    return sum;
  }
};

struct RttModelConfig {
  /// Lognormal sigma of multiplicative measurement noise on each sample.
  double jitter_sigma = 0.06;
  /// Probability of an outlier sample (retransmission/delayed SYN-ACK).
  double outlier_probability = 0.01;
  /// Outlier multiplier range.
  double outlier_min_factor = 2.0;
  double outlier_max_factor = 5.0;
  /// Peak-hour congestion adds up to this fraction on the client segment
  /// (home ISP evening congestion; §2.2).
  double client_congestion_amplitude = 0.10;
  /// And up to this fraction on middle links.
  double middle_congestion_amplitude = 0.03;
};

class RttModel {
 public:
  RttModel(const net::Topology* topology, const FaultInjector* faults,
           RttModelConfig config = {});

  /// Deterministic breakdown for traffic from `location` to `block` over the
  /// route installed at time `t`. Throws std::invalid_argument when no route
  /// exists.
  [[nodiscard]] SegmentBreakdown breakdown(net::CloudLocationId location,
                                           const net::ClientBlock& block,
                                           DeviceClass device,
                                           util::MinuteTime t) const;

  /// Same, against an explicit route (used when the caller already resolved
  /// it, e.g. the traceroute engine).
  [[nodiscard]] SegmentBreakdown breakdown(net::CloudLocationId location,
                                           const net::RouteEntry& route,
                                           const net::ClientBlock& block,
                                           DeviceClass device,
                                           util::MinuteTime t) const;

  /// One noisy RTT sample on top of a breakdown.
  [[nodiscard]] double sample(const SegmentBreakdown& breakdown,
                              util::Rng& rng) const;

  /// Mean of `n` noisy samples (streaming; what a quartet's average RTT is).
  [[nodiscard]] double sample_mean(const SegmentBreakdown& breakdown, int n,
                                   util::Rng& rng) const;

  [[nodiscard]] const RttModelConfig& config() const noexcept {
    return config_;
  }
  [[nodiscard]] const net::Topology& topology() const noexcept {
    return *topology_;
  }

 private:
  [[nodiscard]] double congestion_factor(util::MinuteTime t) const;

  const net::Topology* topology_;
  const FaultInjector* faults_;
  RttModelConfig config_;
};

}  // namespace blameit::sim
