// TCP-handshake telemetry generation: the synthetic stand-in for Azure's
// per-connection RTT stream (Table 2 / Fig 7).
//
// Two emission modes share one RTT model:
//  - generate_records: individual RttRecords (full fidelity; small scales,
//    tests, and the storage-bucket pipeline emulation), and
//  - generate_aggregates: per-quartet (count, mean) aggregates — the fast
//    path month-long benches use. Both see the same routes, faults, diurnal
//    congestion and client populations.
//
// Traffic overrides model anycast re-steering events (the §6.3 "traffic
// shift from East Asia to US West" case): while active, an override sends a
// region's clients to an explicit cloud location instead of their home edge.
//
// Concurrency contract: after construction (and after any add_override /
// add_surge calls complete), all const methods are safe to call concurrently
// from multiple threads — the route-timeline cache is filled eagerly in the
// constructor, so generation never mutates shared state. Mutating methods
// (add_override, add_surge) must not run concurrently with generation.
#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "analysis/quartet.h"
#include "analysis/record.h"
#include "net/topology.h"
#include "sim/fault.h"
#include "sim/population.h"
#include "sim/rtt_model.h"

namespace blameit::sim {

struct TrafficOverride {
  util::MinuteTime start;
  int duration_minutes = 0;
  net::Region client_region{};       ///< whose clients are re-steered
  net::CloudLocationId to_location;  ///< where they now connect

  [[nodiscard]] bool active_at(util::MinuteTime t) const noexcept {
    return t >= start && t < start.plus_minutes(duration_minutes);
  }
};

/// Flash-crowd traffic surge (a regional event driving client volume far
/// above baseline): while active, every quartet whose clients live in
/// `region` emits `multiplier`× the usual sample count. Overlapping surges
/// compound multiplicatively. RTT distributions are untouched — a surge is
/// extra load on the ingest plane, not a latency fault.
struct TrafficSurge {
  util::MinuteTime start;
  int duration_minutes = 0;
  net::Region region{};
  double multiplier = 1.0;

  [[nodiscard]] bool active_at(util::MinuteTime t) const noexcept {
    return t >= start && t < start.plus_minutes(duration_minutes);
  }
};

struct TelemetryConfig {
  std::uint64_t seed = 7;
  PopulationConfig population{};
  RttModelConfig rtt{};
  /// Fraction of a block's primary sample volume that goes to the secondary
  /// location when it also connects there in a bucket.
  double secondary_volume_fraction = 0.5;
};

class TelemetryGenerator {
 public:
  TelemetryGenerator(const net::Topology* topology,
                     const FaultInjector* faults, TelemetryConfig config = {});

  /// Emits individual RTT records for one 5-minute bucket.
  void generate_records(
      util::TimeBucket bucket,
      const std::function<void(const analysis::RttRecord&)>& sink) const;

  /// Emits the records of `bucket` in a deterministically shuffled order —
  /// the same multiset as generate_records, arriving out of order the way
  /// the production storage buckets lose intra-hour ordering (§6.1). This
  /// is the input mode that exercises the ingest watermark logic.
  void generate_records_shuffled(
      util::TimeBucket bucket,
      const std::function<void(const analysis::RttRecord&)>& sink) const;

  /// Emits per-quartet aggregates for one bucket: (key, sample count, mean
  /// RTT). Equivalent in distribution to averaging generate_records output.
  void generate_aggregates(
      util::TimeBucket bucket,
      const std::function<void(const analysis::QuartetKey&, int, double)>&
          sink) const;

  /// Locations the block's clients connect to in this bucket, primary first
  /// (override-aware).
  [[nodiscard]] std::vector<net::CloudLocationId> connected_locations(
      const net::ClientBlock& block, util::TimeBucket bucket) const;

  void add_override(TrafficOverride override_event);
  void add_surge(TrafficSurge surge);

  /// Product of the multipliers of all surges active for `region` at `t`
  /// (1.0 when none — the common case short-circuits without any scan).
  [[nodiscard]] double surge_factor(net::Region region,
                                    util::MinuteTime t) const noexcept;

  [[nodiscard]] const Population& population() const noexcept {
    return population_;
  }
  [[nodiscard]] const RttModel& model() const noexcept { return model_; }
  [[nodiscard]] const net::Topology& topology() const noexcept {
    return *topology_;
  }

 private:
  /// Per-quartet deterministic RNG so any bucket can be regenerated
  /// independently and identically.
  [[nodiscard]] util::Rng quartet_rng(const net::ClientBlock& block,
                                      util::TimeBucket bucket,
                                      net::CloudLocationId location,
                                      DeviceClass device) const;

  /// Resolves the route via a cached timeline handle; null if unannounced.
  [[nodiscard]] const net::RouteEntry* route_for(net::CloudLocationId location,
                                                 const net::ClientBlock& block,
                                                 util::MinuteTime t) const;

  const net::Topology* topology_;
  TelemetryConfig config_;
  Population population_;
  RttModel model_;
  std::vector<TrafficOverride> overrides_;
  std::vector<TrafficSurge> surges_;
  // (location, announced prefix) -> timeline handle. Filled EAGERLY for
  // every pair in the constructor — a lazily-filled mutable cache would
  // race once ingest shards generate records concurrently. Read-only after
  // construction.
  std::unordered_map<std::uint64_t, const net::RouteTimeline*>
      timeline_cache_;
};

}  // namespace blameit::sim
