// Simulated traceroute: AS-level per-hop RTT snapshots of the same network
// state the telemetry generator samples, plus probe-cost accounting.
//
// Replaces the paper's `tracert` runs from cloud locations (§5, §6.1). Hops
// are reported at AS granularity — the level BlameIt compares at (§5.2) —
// with cumulative RTTs whose final value matches the non-mobile RTT model
// for the same path and instant (modulo probe noise).
#pragma once

#include <cstdint>
#include <vector>

#include "net/topology.h"
#include "sim/rtt_model.h"
#include "util/rng.h"
#include "util/time.h"

namespace blameit::sim {

struct TracerouteHop {
  net::AsId as;
  double cumulative_rtt_ms = 0.0;  ///< RTT to this AS's last responding hop
};

struct TracerouteResult {
  net::CloudLocationId from;
  net::Slash24 target;
  util::MinuteTime time;
  /// Hops in path order: first middle AS ... client AS. The cloud's own
  /// contribution is hops[0].cumulative minus the first link (reported
  /// separately as cloud_ms to keep the arithmetic explicit).
  std::vector<TracerouteHop> hops;
  double cloud_ms = 0.0;  ///< cumulative RTT when leaving the cloud AS
  bool reached = false;   ///< false when no route exists (probe lost)

  /// Per-AS contributions: difference of consecutive cumulative RTTs, the
  /// quantity the active phase compares against baselines (§5.2's example).
  [[nodiscard]] std::vector<std::pair<net::AsId, double>> contributions()
      const;
};

/// Counts probes per (location, day) — the overhead currency of §6.5.
class ProbeAccountant {
 public:
  void record(net::CloudLocationId from, util::MinuteTime t) noexcept;

  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }
  [[nodiscard]] std::uint64_t on_day(int day) const;
  [[nodiscard]] std::uint64_t at_location(net::CloudLocationId loc) const;
  void reset() noexcept;

 private:
  std::uint64_t total_ = 0;
  std::unordered_map<int, std::uint64_t> by_day_;
  std::unordered_map<std::uint16_t, std::uint64_t> by_location_;
};

struct TracerouteConfig {
  std::uint64_t seed = 99;
  /// Lognormal sigma of per-hop probe noise (single-packet measurements are
  /// noisier than averaged handshake RTTs).
  double hop_noise_sigma = 0.04;
};

class TracerouteEngine {
 public:
  TracerouteEngine(const net::Topology* topology, const RttModel* model,
                   TracerouteConfig config = {});

  /// Issues one traceroute and charges the accountant.
  [[nodiscard]] TracerouteResult trace(net::CloudLocationId from,
                                       net::Slash24 target,
                                       util::MinuteTime t);

  [[nodiscard]] const ProbeAccountant& accountant() const noexcept {
    return accountant_;
  }
  [[nodiscard]] ProbeAccountant& accountant() noexcept { return accountant_; }

 private:
  const net::Topology* topology_;
  const RttModel* model_;
  TracerouteConfig config_;
  ProbeAccountant accountant_;
};

}  // namespace blameit::sim
