// Simulated traceroute: AS-level per-hop RTT snapshots of the same network
// state the telemetry generator samples, plus probe-cost accounting.
//
// Replaces the paper's `tracert` runs from cloud locations (§5, §6.1). Hops
// are reported at AS granularity — the level BlameIt compares at (§5.2) —
// with cumulative RTTs whose final value matches the non-mobile RTT model
// for the same path and instant (modulo probe noise).
#pragma once

#include <cstdint>
#include <vector>

#include "net/topology.h"
#include "sim/chaos.h"
#include "sim/rtt_model.h"
#include "util/rng.h"
#include "util/time.h"

namespace blameit::sim {

struct TracerouteHop {
  net::AsId as;
  double cumulative_rtt_ms = 0.0;  ///< RTT to this AS's last responding hop
};

struct TracerouteResult {
  net::CloudLocationId from;
  net::Slash24 target;
  util::MinuteTime time;
  /// Hops in path order: first middle AS ... client AS. The cloud's own
  /// contribution is hops[0].cumulative minus the first link (reported
  /// separately as cloud_ms to keep the arithmetic explicit).
  std::vector<TracerouteHop> hops;
  double cloud_ms = 0.0;  ///< cumulative RTT when leaving the cloud AS
  bool reached = false;   ///< true only when the full path answered
  /// Timed out mid-path: `hops` holds the reached prefix only and the
  /// client hop is missing. Mutually exclusive with `reached`.
  bool truncated = false;
  /// Whole probe lost before the first hop (chaos loss or engine outage).
  /// Retryable — the next attempt draws an independent fate.
  bool lost = false;
  /// No route exists for the target. NOT retryable: every attempt fails the
  /// same way until routing changes.
  bool no_route = false;
  /// The probing engine was inside a chaos outage window.
  bool in_outage = false;

  /// Per-AS contributions: difference of consecutive cumulative RTTs, the
  /// quantity the active phase compares against baselines (§5.2's example).
  /// Empty for lost/no-route probes (no hops answered); for truncated
  /// probes it covers the reached prefix only.
  [[nodiscard]] std::vector<std::pair<net::AsId, double>> contributions()
      const;
};

/// Counts probes per (location, day) — the overhead currency of §6.5.
/// Spend and yield are tracked separately: total() counts every attempt
/// issued (what the probing bill charges, retries included), succeeded()
/// only the full-path traceroutes that produced usable measurements.
class ProbeAccountant {
 public:
  void record(net::CloudLocationId from, util::MinuteTime t) noexcept;
  /// Marks the most recent attempt as having answered end-to-end.
  void record_success() noexcept { ++succeeded_; }

  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }
  [[nodiscard]] std::uint64_t succeeded() const noexcept { return succeeded_; }
  /// Attempts that yielded no full path: lost, timed out mid-path, engine
  /// outage, or no route.
  [[nodiscard]] std::uint64_t failed() const noexcept {
    return total_ - succeeded_;
  }
  [[nodiscard]] std::uint64_t on_day(int day) const;
  [[nodiscard]] std::uint64_t at_location(net::CloudLocationId loc) const;
  void reset() noexcept;

 private:
  std::uint64_t total_ = 0;
  std::uint64_t succeeded_ = 0;
  std::unordered_map<int, std::uint64_t> by_day_;
  std::unordered_map<std::uint16_t, std::uint64_t> by_location_;
};

struct TracerouteConfig {
  std::uint64_t seed = 99;
  /// Lognormal sigma of per-hop probe noise (single-packet measurements are
  /// noisier than averaged handshake RTTs).
  double hop_noise_sigma = 0.04;
};

class TracerouteEngine {
 public:
  TracerouteEngine(const net::Topology* topology, const RttModel* model,
                   TracerouteConfig config = {},
                   const ChaosInjector* chaos = nullptr);

  /// Issues one traceroute and charges the accountant. `attempt`
  /// distinguishes retries of the same logical probe: each attempt draws an
  /// independent chaos fate and (for attempt > 0) an independent noise
  /// stream, while attempt 0 reproduces the historical stream exactly.
  [[nodiscard]] TracerouteResult trace(net::CloudLocationId from,
                                       net::Slash24 target, util::MinuteTime t,
                                       int attempt = 0);

  /// True when the chaos schedule has the whole engine down at `t`; the
  /// pipeline degrades to passive-only instead of burning its budget on
  /// probes that cannot answer. Always false without a chaos injector.
  [[nodiscard]] bool in_outage(util::MinuteTime t) const noexcept {
    return chaos_ != nullptr && chaos_->in_outage(t);
  }

  /// Attach/detach the chaos layer (null = pristine measurement plane).
  void set_chaos(const ChaosInjector* chaos) noexcept { chaos_ = chaos; }
  [[nodiscard]] const ChaosInjector* chaos() const noexcept { return chaos_; }

  [[nodiscard]] const ProbeAccountant& accountant() const noexcept {
    return accountant_;
  }
  [[nodiscard]] ProbeAccountant& accountant() noexcept { return accountant_; }

 private:
  const net::Topology* topology_;
  const RttModel* model_;
  TracerouteConfig config_;
  const ChaosInjector* chaos_ = nullptr;
  ProbeAccountant accountant_;
};

}  // namespace blameit::sim
