// AS-level topology graph with business relationships and per-edge latency.
//
// Routes between the cloud AS and eyeball ASes are computed as valley-free
// paths (Gao-Rexford export rules): a path ascends customer→provider links,
// crosses at most one peering link, and then descends provider→customer
// links. Route selection prefers fewer AS hops, then lower latency — enough
// BGP realism for BlameIt, whose passive phase only consumes the resulting
// AS-path sets and whose active phase consumes per-AS latency contributions.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "net/asn.h"

namespace blameit::net {

/// Relationship of an edge from `a` to `b`.
enum class LinkKind : std::uint8_t {
  CustomerOf,  ///< a is a customer of b (a pays b)
  Peer,        ///< settlement-free peering
};

struct AsLink {
  AsId a;
  AsId b;
  LinkKind kind{};          ///< interpreted from a's point of view
  double latency_ms = 1.0;  ///< one-way contribution of crossing this link
};

/// An AS-level path: ordered list of ASes from source (cloud) to destination
/// (eyeball), inclusive of both endpoints.
using AsPath = std::vector<AsId>;

class AsGraph {
 public:
  explicit AsGraph(const AsRegistry* registry);

  /// Adds a bidirectional adjacency. `kind` is from a's point of view:
  /// CustomerOf means a pays b. Throws on unknown AS, self-loop, or negative
  /// latency.
  void add_link(const AsLink& link);

  [[nodiscard]] const AsRegistry& registry() const noexcept {
    return *registry_;
  }
  [[nodiscard]] std::size_t link_count() const noexcept { return links_; }

  /// Latency of the direct link a-b; nullopt when not adjacent.
  [[nodiscard]] std::optional<double> link_latency(AsId a,
                                                   AsId b) const noexcept;

  /// Up to `k` distinct valley-free paths from src to dst, best first
  /// (fewest hops, then lowest total latency). Empty when unreachable.
  [[nodiscard]] std::vector<AsPath> k_paths(AsId src, AsId dst,
                                            std::size_t k) const;

  /// Best valley-free path (k_paths(...,1)); nullopt when unreachable.
  [[nodiscard]] std::optional<AsPath> best_path(AsId src, AsId dst) const;

  /// Up to `k` paths from src to EVERY eyeball AS at once — bit-identical
  /// (same paths, same order) to calling k_paths(src, e, k) per eyeball,
  /// but the exhaustive valley-free DFS runs once over the transit core
  /// instead of once per eyeball. With E eyeballs hanging off the core,
  /// the per-eyeball DFS wastes O(E) dead-end visits at every transit
  /// expansion, so the all-at-once form is ~E× cheaper — the difference
  /// between minutes and milliseconds at 10³-10⁴ eyeballs. Relies on
  /// eyeballs being stub ASes for path-set equality: an eyeball with its
  /// own customers could relay traffic, and those relayed paths would be
  /// missed here (the generator never builds such links).
  [[nodiscard]] std::unordered_map<AsId, std::vector<AsPath>> eyeball_paths(
      AsId src, std::size_t k) const;

  /// Sum of link latencies along a path. Throws if consecutive ASes are not
  /// adjacent.
  [[nodiscard]] double path_latency(std::span<const AsId> path) const;

 private:
  /// Relationship of a neighbor from the owning node's point of view.
  enum class Rel : std::uint8_t { Customer, Provider, Peer };

  struct Neighbor {
    AsId to;
    Rel rel;  ///< owner's relationship to `to`: Customer = owner pays `to`
    double latency_ms;
  };

  [[nodiscard]] const std::vector<Neighbor>& neighbors(AsId a) const;

  const AsRegistry* registry_;
  std::unordered_map<AsId, std::vector<Neighbor>> adj_;
  std::size_t links_ = 0;
};

}  // namespace blameit::net
