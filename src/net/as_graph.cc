#include "net/as_graph.h"

#include <algorithm>
#include <stdexcept>

namespace blameit::net {

AsGraph::AsGraph(const AsRegistry* registry) : registry_(registry) {
  if (!registry_) throw std::invalid_argument{"AsGraph: null registry"};
}

void AsGraph::add_link(const AsLink& link) {
  if (link.a == link.b) throw std::invalid_argument{"AsGraph: self-loop"};
  if (!registry_->contains(link.a) || !registry_->contains(link.b)) {
    throw std::invalid_argument{"AsGraph: link references unknown AS"};
  }
  if (link.latency_ms < 0.0) {
    throw std::invalid_argument{"AsGraph: negative link latency"};
  }
  if (link_latency(link.a, link.b)) {
    throw std::invalid_argument{"AsGraph: duplicate link"};
  }
  if (link.kind == LinkKind::Peer) {
    adj_[link.a].push_back(Neighbor{link.b, Rel::Peer, link.latency_ms});
    adj_[link.b].push_back(Neighbor{link.a, Rel::Peer, link.latency_ms});
  } else {  // a is the customer of b
    adj_[link.a].push_back(Neighbor{link.b, Rel::Customer, link.latency_ms});
    adj_[link.b].push_back(Neighbor{link.a, Rel::Provider, link.latency_ms});
  }
  ++links_;
}

std::optional<double> AsGraph::link_latency(AsId a, AsId b) const noexcept {
  const auto it = adj_.find(a);
  if (it == adj_.end()) return std::nullopt;
  for (const auto& n : it->second) {
    if (n.to == b) return n.latency_ms;
  }
  return std::nullopt;
}

const std::vector<AsGraph::Neighbor>& AsGraph::neighbors(AsId a) const {
  static const std::vector<Neighbor> kEmpty;
  const auto it = adj_.find(a);
  return it == adj_.end() ? kEmpty : it->second;
}

std::vector<AsPath> AsGraph::k_paths(AsId src, AsId dst, std::size_t k) const {
  std::vector<AsPath> found;
  if (k == 0 || src == dst) return found;

  // Bounded DFS enumerating simple valley-free paths. Topologies here are
  // small (tens to low hundreds of ASes), so exhaustive enumeration with a
  // depth cap is cheap and exact.
  constexpr std::size_t kMaxNodes = 7;

  // Walk phase: while ascending we may take Customer (uphill) links, one Peer
  // link, or switch to descending via a Provider (downhill) link. Once
  // descending, only Provider links are allowed.
  enum class Phase : std::uint8_t { Ascending, Descending };

  AsPath current{src};
  std::vector<std::pair<AsPath, double>> candidates;

  auto dfs = [&](auto&& self, AsId node, Phase phase, double latency) -> void {
    if (node == dst) {
      candidates.emplace_back(current, latency);
      return;
    }
    if (current.size() >= kMaxNodes) return;
    for (const auto& n : neighbors(node)) {
      if (std::find(current.begin(), current.end(), n.to) != current.end()) {
        continue;  // simple paths only
      }
      Phase next_phase = Phase::Descending;
      if (phase == Phase::Ascending) {
        if (n.rel == Rel::Customer) next_phase = Phase::Ascending;
      } else {
        if (n.rel != Rel::Provider) continue;  // only downhill once past apex
        next_phase = Phase::Descending;
      }
      current.push_back(n.to);
      self(self, n.to, next_phase, latency + n.latency_ms);
      current.pop_back();
    }
  };
  dfs(dfs, src, Phase::Ascending, 0.0);

  std::sort(candidates.begin(), candidates.end(),
            [](const auto& x, const auto& y) {
              if (x.first.size() != y.first.size()) {
                return x.first.size() < y.first.size();
              }
              if (x.second != y.second) return x.second < y.second;
              return x.first < y.first;  // deterministic tie-break
            });
  candidates.erase(std::unique(candidates.begin(), candidates.end(),
                               [](const auto& x, const auto& y) {
                                 return x.first == y.first;
                               }),
                   candidates.end());
  for (auto& [path, latency] : candidates) {
    found.push_back(std::move(path));
    if (found.size() == k) break;
  }
  return found;
}

std::unordered_map<AsId, std::vector<AsPath>> AsGraph::eyeball_paths(
    AsId src, std::size_t k) const {
  std::unordered_map<AsId, std::vector<AsPath>> out;
  if (k == 0) return out;

  std::vector<AsId> eyeballs;
  for (const auto& info : registry_->all()) {
    if (info.type == AsType::Eyeball && info.id != src) {
      eyeballs.push_back(info.id);
    }
  }
  if (eyeballs.empty()) return out;

  // Phase 1: enumerate every simple valley-free walk PREFIX over the
  // non-eyeball core (k_paths' DFS states, minus the eyeball dead-ends),
  // bucketed by endpoint. Each prefix remembers its phase: a peering or
  // customer link into an eyeball is only legal while still ascending,
  // exactly as in k_paths.
  constexpr std::size_t kMaxNodes = 7;  // full path cap, matching k_paths
  enum class Phase : std::uint8_t { Ascending, Descending };
  struct CorePrefix {
    AsPath path;
    double latency;
    Phase phase;
  };
  std::unordered_map<AsId, std::vector<CorePrefix>> ending_at;

  AsPath current{src};
  auto dfs = [&](auto&& self, AsId node, Phase phase, double latency) -> void {
    ending_at[node].push_back(CorePrefix{current, latency, phase});
    if (current.size() >= kMaxNodes - 1) return;  // leave room for the eyeball
    for (const auto& n : neighbors(node)) {
      if (registry_->at(n.to).type == AsType::Eyeball) continue;
      if (std::find(current.begin(), current.end(), n.to) != current.end()) {
        continue;
      }
      Phase next_phase = Phase::Descending;
      if (phase == Phase::Ascending) {
        if (n.rel == Rel::Customer) next_phase = Phase::Ascending;
      } else {
        if (n.rel != Rel::Provider) continue;
        next_phase = Phase::Descending;
      }
      current.push_back(n.to);
      self(self, n.to, next_phase, latency + n.latency_ms);
      current.pop_back();
    }
  };
  dfs(dfs, src, Phase::Ascending, 0.0);

  // Phase 2: extend each core prefix across the final link into the eyeball
  // and rank with k_paths' exact comparator. Latency accumulates in the same
  // left-to-right order as the per-eyeball DFS, so FP sums match bit-for-bit.
  std::vector<std::pair<AsPath, double>> candidates;
  for (const AsId e : eyeballs) {
    candidates.clear();
    for (const auto& n : neighbors(e)) {  // n.rel is e's view; invert for T
      const bool provider_entry = n.rel == Rel::Customer;  // T provides e
      const auto it = ending_at.find(n.to);
      if (it == ending_at.end()) continue;
      for (const CorePrefix& prefix : it->second) {
        if (!provider_entry && prefix.phase != Phase::Ascending) continue;
        AsPath path = prefix.path;
        path.push_back(e);
        candidates.emplace_back(std::move(path),
                                prefix.latency + n.latency_ms);
      }
    }
    std::sort(candidates.begin(), candidates.end(),
              [](const auto& x, const auto& y) {
                if (x.first.size() != y.first.size()) {
                  return x.first.size() < y.first.size();
                }
                if (x.second != y.second) return x.second < y.second;
                return x.first < y.first;
              });
    std::vector<AsPath>& found = out[e];
    for (auto& [path, latency] : candidates) {
      found.push_back(std::move(path));
      if (found.size() == k) break;
    }
  }
  return out;
}

std::optional<AsPath> AsGraph::best_path(AsId src, AsId dst) const {
  auto paths = k_paths(src, dst, 1);
  if (paths.empty()) return std::nullopt;
  return std::move(paths.front());
}

double AsGraph::path_latency(std::span<const AsId> path) const {
  double total = 0.0;
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    const auto lat = link_latency(path[i], path[i + 1]);
    if (!lat) {
      throw std::invalid_argument{"AsGraph: path crosses missing link"};
    }
    total += *lat;
  }
  return total;
}

}  // namespace blameit::net
