// Cloud edge locations ("cloud nodes" in the paper). Azure serves clients
// from hundreds of edge locations; each has a home region and metro and a set
// of egress adjacencies into the transit fabric.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/asn.h"
#include "net/geo.h"

namespace blameit::net {

struct CloudLocationId {
  std::uint16_t value = 0;
  constexpr auto operator<=>(const CloudLocationId&) const = default;
  [[nodiscard]] std::string to_string() const {
    return "edge-" + std::to_string(value);
  }
};

struct CloudLocation {
  CloudLocationId id;
  std::string name;
  Region region{};
  MetroId metro;
  /// Transit ASes this location has direct egress links to. Route selection
  /// for this location only considers paths whose first middle hop is one of
  /// these.
  std::vector<AsId> egress_peers;
  /// Base intra-cloud contribution to the RTT at this location (ms): server
  /// + cloud-network time before traffic leaves the cloud AS.
  double cloud_segment_ms = 4.0;
};

}  // namespace blameit::net

template <>
struct std::hash<blameit::net::CloudLocationId> {
  std::size_t operator()(const blameit::net::CloudLocationId& c) const noexcept {
    return std::hash<std::uint16_t>{}(c.value);
  }
};
