#include "net/ipv4.h"

#include <charconv>
#include <cstdio>

namespace blameit::net {

std::optional<Ipv4Addr> Ipv4Addr::parse(std::string_view s) {
  std::uint32_t value = 0;
  int octets = 0;
  const char* p = s.data();
  const char* end = s.data() + s.size();
  while (octets < 4) {
    unsigned int octet = 0;
    const auto [next, ec] = std::from_chars(p, end, octet);
    if (ec != std::errc{} || octet > 255 || next == p) return std::nullopt;
    value = (value << 8) | octet;
    ++octets;
    p = next;
    if (octets < 4) {
      if (p == end || *p != '.') return std::nullopt;
      ++p;
    }
  }
  if (p != end) return std::nullopt;
  return Ipv4Addr{value};
}

std::string Ipv4Addr::to_string() const {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%u.%u.%u.%u", (value >> 24) & 0xFF,
                (value >> 16) & 0xFF, (value >> 8) & 0xFF, value & 0xFF);
  return buf;
}

std::string Slash24::to_string() const {
  return base().to_string().substr(0, base().to_string().rfind('.')) + ".0/24";
}

Prefix Prefix::of(Ipv4Addr a, std::uint8_t len) noexcept {
  const std::uint32_t mask =
      len == 0 ? 0u : ~std::uint32_t{0} << (32 - len);
  return Prefix{.network = a.value & mask, .length = len};
}

std::optional<Prefix> Prefix::parse(std::string_view cidr) {
  const auto slash = cidr.find('/');
  if (slash == std::string_view::npos) return std::nullopt;
  const auto addr = Ipv4Addr::parse(cidr.substr(0, slash));
  if (!addr) return std::nullopt;
  unsigned int len = 0;
  const auto rest = cidr.substr(slash + 1);
  const auto [next, ec] =
      std::from_chars(rest.data(), rest.data() + rest.size(), len);
  if (ec != std::errc{} || len > 32 || next != rest.data() + rest.size()) {
    return std::nullopt;
  }
  return Prefix::of(*addr, static_cast<std::uint8_t>(len));
}

bool Prefix::contains(Ipv4Addr a) const noexcept {
  const std::uint32_t mask =
      length == 0 ? 0u : ~std::uint32_t{0} << (32 - length);
  return (a.value & mask) == network;
}

bool Prefix::contains(Slash24 b) const noexcept {
  return length <= 24 ? contains(b.base())
                      : false;  // a sub-/24 prefix never covers a whole /24
}

std::uint32_t Prefix::slash24_count() const noexcept {
  return length >= 24 ? 1u : 1u << (24 - length);
}

std::string Prefix::to_string() const {
  return Ipv4Addr{network}.to_string() + "/" + std::to_string(length);
}

}  // namespace blameit::net
