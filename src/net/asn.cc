#include "net/asn.h"

#include <stdexcept>

namespace blameit::net {

std::string_view to_string(AsType t) noexcept {
  switch (t) {
    case AsType::Cloud: return "cloud";
    case AsType::Transit: return "transit";
    case AsType::Eyeball: return "eyeball";
  }
  return "?";
}

const AsInfo& AsRegistry::add(AsInfo info) {
  const auto [it, inserted] = index_.emplace(info.id.value, infos_.size());
  if (!inserted) {
    throw std::invalid_argument{"AsRegistry: duplicate " +
                                info.id.to_string()};
  }
  infos_.push_back(std::move(info));
  return infos_.back();
}

const AsInfo* AsRegistry::find(AsId id) const noexcept {
  const auto it = index_.find(id.value);
  return it == index_.end() ? nullptr : &infos_[it->second];
}

const AsInfo& AsRegistry::at(AsId id) const {
  const auto* info = find(id);
  if (!info) throw std::out_of_range{"AsRegistry: unknown " + id.to_string()};
  return *info;
}

std::vector<AsId> AsRegistry::ids_of_type(AsType t) const {
  std::vector<AsId> out;
  for (const auto& info : infos_) {
    if (info.type == t) out.push_back(info.id);
  }
  return out;
}

}  // namespace blameit::net
