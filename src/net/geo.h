// Geography: the cloud regions the paper reports per-region results for
// (Fig 2, Fig 9) and metro areas used by the ⟨AS, Metro⟩ baseline grouping.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace blameit::net {

/// Cloud regions matching the per-region breakdowns in the paper's figures
/// (USA, Europe, India, China, Brazil, Australia, East Asia).
enum class Region : std::uint8_t {
  UnitedStates,
  Europe,
  India,
  China,
  Brazil,
  Australia,
  EastAsia,
};

inline constexpr std::array<Region, 7> kAllRegions = {
    Region::UnitedStates, Region::Europe,    Region::India, Region::China,
    Region::Brazil,       Region::Australia, Region::EastAsia,
};

[[nodiscard]] std::string_view to_string(Region r) noexcept;

/// Structural properties of a region that the trace generator keys off:
/// the paper observes badness rates track infrastructure maturity, with the
/// USA an outlier due to aggressive latency targets (§2.2), and middle-segment
/// faults dominating in regions with still-evolving transit (§6.2/Fig 9).
struct RegionProfile {
  Region region;
  /// Azure-style region-specific RTT badness threshold, non-mobile (ms).
  double rtt_target_ms;
  /// Additional RTT allowance for mobile (cellular) clients (ms).
  double mobile_extra_ms;
  /// Baseline propagation RTT scale between clients and in-region edges (ms).
  double base_rtt_ms;
  /// How failure-prone transit (middle) ASes are, relative rate in [0, ~3].
  double transit_fault_rate;
  /// How failure-prone client/eyeball ISPs are.
  double client_fault_rate;
};

/// Built-in profiles for all regions; thresholds are calibrated so the USA
/// target is aggressive relative to its base RTT, reproducing Fig 2's shape.
[[nodiscard]] const RegionProfile& region_profile(Region r) noexcept;

/// Identifier of a metro area within a region.
struct MetroId {
  std::uint16_t value = 0;
  constexpr auto operator<=>(const MetroId&) const = default;
};

struct Metro {
  MetroId id;
  Region region{};
  std::string name;
};

}  // namespace blameit::net

template <>
struct std::hash<blameit::net::MetroId> {
  std::size_t operator()(const blameit::net::MetroId& m) const noexcept {
    return std::hash<std::uint16_t>{}(m.value);
  }
};
