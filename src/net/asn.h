// Autonomous systems: identities, roles, and the registry mapping AS numbers
// to metadata. The fault-localization output of BlameIt is always an AsId.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/geo.h"

namespace blameit::net {

/// An AS number.
struct AsId {
  std::uint32_t value = 0;
  constexpr auto operator<=>(const AsId&) const = default;
  [[nodiscard]] std::string to_string() const {
    return "AS" + std::to_string(value);
  }
};

/// Role of an AS in the synthetic topology.
enum class AsType : std::uint8_t {
  Cloud,    ///< the cloud provider's own network (one per topology)
  Transit,  ///< middle / backbone carriers
  Eyeball,  ///< client-facing access ISPs
};

[[nodiscard]] std::string_view to_string(AsType t) noexcept;

struct AsInfo {
  AsId id;
  AsType type{};
  Region region{};  ///< home region (transit ASes may span several)
  std::string name;
};

/// Registry of all ASes in a topology. Insertion order is stable; lookups are
/// O(1). The registry owns the AsInfo records.
class AsRegistry {
 public:
  /// Registers a new AS; throws std::invalid_argument on duplicate id.
  const AsInfo& add(AsInfo info);

  [[nodiscard]] const AsInfo* find(AsId id) const noexcept;
  /// Throws std::out_of_range when absent.
  [[nodiscard]] const AsInfo& at(AsId id) const;
  [[nodiscard]] bool contains(AsId id) const noexcept {
    return find(id) != nullptr;
  }

  [[nodiscard]] std::size_t size() const noexcept { return infos_.size(); }
  [[nodiscard]] const std::vector<AsInfo>& all() const noexcept {
    return infos_;
  }
  [[nodiscard]] std::vector<AsId> ids_of_type(AsType t) const;

 private:
  std::vector<AsInfo> infos_;
  std::unordered_map<std::uint32_t, std::size_t> index_;
};

}  // namespace blameit::net

template <>
struct std::hash<blameit::net::AsId> {
  std::size_t operator()(const blameit::net::AsId& a) const noexcept {
    return std::hash<std::uint32_t>{}(a.value);
  }
};
