// IPv4 addresses, CIDR prefixes, and the /24 blocks that quartets aggregate
// over (§2.1). Addresses are plain value types (host-order uint32) with
// parsing/formatting; Slash24 is the canonical client aggregation unit.
#pragma once

#include <compare>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace blameit::net {

/// An IPv4 address in host byte order.
struct Ipv4Addr {
  std::uint32_t value = 0;

  constexpr auto operator<=>(const Ipv4Addr&) const = default;

  [[nodiscard]] static constexpr Ipv4Addr from_octets(std::uint8_t a,
                                                      std::uint8_t b,
                                                      std::uint8_t c,
                                                      std::uint8_t d) noexcept {
    return Ipv4Addr{(std::uint32_t{a} << 24) | (std::uint32_t{b} << 16) |
                    (std::uint32_t{c} << 8) | d};
  }

  /// Parses dotted-quad notation; nullopt on malformed input.
  [[nodiscard]] static std::optional<Ipv4Addr> parse(std::string_view s);

  [[nodiscard]] std::string to_string() const;
};

/// A /24 block — the client-side spatial aggregation unit of a quartet.
struct Slash24 {
  std::uint32_t block = 0;  ///< top 24 bits of the address, right-aligned

  constexpr auto operator<=>(const Slash24&) const = default;

  [[nodiscard]] static constexpr Slash24 of(Ipv4Addr a) noexcept {
    return Slash24{a.value >> 8};
  }
  /// First address of the block.
  [[nodiscard]] constexpr Ipv4Addr base() const noexcept {
    return Ipv4Addr{block << 8};
  }
  /// The i-th host inside the block (i in [0, 255]).
  [[nodiscard]] constexpr Ipv4Addr host(std::uint8_t i) const noexcept {
    return Ipv4Addr{(block << 8) | i};
  }
  [[nodiscard]] std::string to_string() const;  ///< "a.b.c.0/24"
};

/// A CIDR prefix (BGP-announced block). Prefix length in [0, 32].
struct Prefix {
  std::uint32_t network = 0;  ///< masked network address, host order
  std::uint8_t length = 0;

  constexpr auto operator<=>(const Prefix&) const = default;

  [[nodiscard]] static Prefix of(Ipv4Addr a, std::uint8_t len) noexcept;
  [[nodiscard]] static std::optional<Prefix> parse(std::string_view cidr);

  [[nodiscard]] bool contains(Ipv4Addr a) const noexcept;
  [[nodiscard]] bool contains(Slash24 b) const noexcept;
  /// Number of /24 blocks covered (1 for length >= 24).
  [[nodiscard]] std::uint32_t slash24_count() const noexcept;
  [[nodiscard]] std::string to_string() const;
};

}  // namespace blameit::net

template <>
struct std::hash<blameit::net::Ipv4Addr> {
  std::size_t operator()(const blameit::net::Ipv4Addr& a) const noexcept {
    return std::hash<std::uint32_t>{}(a.value);
  }
};

template <>
struct std::hash<blameit::net::Slash24> {
  std::size_t operator()(const blameit::net::Slash24& b) const noexcept {
    return std::hash<std::uint32_t>{}(b.block ^ 0x9E3779B9u);
  }
};

template <>
struct std::hash<blameit::net::Prefix> {
  std::size_t operator()(const blameit::net::Prefix& p) const noexcept {
    return std::hash<std::uint64_t>{}(
        (std::uint64_t{p.network} << 8) | p.length);
  }
};
