// Client device classes. The paper's quartets key on mobile vs non-mobile
// because they use different connectivity (cellular vs broadband) and have
// separate badness thresholds (§2.1).
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

namespace blameit::net {

enum class DeviceClass : std::uint8_t { NonMobile, Mobile };

inline constexpr std::array<DeviceClass, 2> kAllDeviceClasses = {
    DeviceClass::NonMobile, DeviceClass::Mobile};

[[nodiscard]] constexpr std::string_view to_string(DeviceClass d) noexcept {
  return d == DeviceClass::Mobile ? "mobile" : "non-mobile";
}

}  // namespace blameit::net
