#include "net/bgp.h"

#include <algorithm>
#include <stdexcept>

namespace blameit::net {

std::string MiddleSegmentInterner::key_of(std::span<const AsId> ases) {
  std::string key;
  key.reserve(ases.size() * 7);
  for (const auto as : ases) {
    key += std::to_string(as.value);
    key += '-';
  }
  return key;
}

MiddleSegmentId MiddleSegmentInterner::intern(std::span<const AsId> ases) {
  auto key = key_of(ases);
  const auto it = index_.find(key);
  if (it != index_.end()) return MiddleSegmentId{it->second};
  const auto id = static_cast<std::uint32_t>(segments_.size());
  segments_.emplace_back(ases.begin(), ases.end());
  index_.emplace(std::move(key), id);
  return MiddleSegmentId{id};
}

std::optional<MiddleSegmentId> MiddleSegmentInterner::find(
    std::span<const AsId> ases) const {
  const auto it = index_.find(key_of(ases));
  if (it == index_.end()) return std::nullopt;
  return MiddleSegmentId{it->second};
}

const std::vector<AsId>& MiddleSegmentInterner::ases(
    MiddleSegmentId id) const {
  if (id.value >= segments_.size()) {
    throw std::out_of_range{"MiddleSegmentInterner: unknown " +
                            id.to_string()};
  }
  return segments_[id.value];
}

std::string MiddleSegmentInterner::describe(MiddleSegmentId id) const {
  std::string out = "[";
  for (const auto as : ases(id)) {
    if (out.size() > 1) out += ' ';
    out += as.to_string();
  }
  return out + "]";
}

void RouteTimeline::set_route(util::MinuteTime when, RouteEntry route) {
  if (!changes_.empty() && when < changes_.back().first) {
    throw std::invalid_argument{"RouteTimeline: changes must be ordered"};
  }
  changes_.emplace_back(when, std::move(route));
}

const RouteEntry* RouteTimeline::route_at(
    util::MinuteTime when) const noexcept {
  // Last change at or before `when`.
  const auto it = std::upper_bound(
      changes_.begin(), changes_.end(), when,
      [](util::MinuteTime t, const auto& entry) { return t < entry.first; });
  if (it == changes_.begin()) return nullptr;
  return &std::prev(it)->second;
}

RoutingState::RoutingState(MiddleSegmentInterner* interner)
    : interner_(interner) {
  if (!interner_) throw std::invalid_argument{"RoutingState: null interner"};
}

RoutingState::LocPrefixKey RoutingState::key_of(CloudLocationId loc,
                                                const Prefix& p) noexcept {
  return LocPrefixKey{(std::uint64_t{loc.value} << 40) |
                      (std::uint64_t{p.network} << 8) | p.length};
}

RouteEntry RoutingState::make_entry(const Prefix& prefix,
                                    AsPath full_path) const {
  if (full_path.size() < 2) {
    throw std::invalid_argument{
        "RoutingState: path must include cloud and client AS"};
  }
  const auto middle = std::span<const AsId>{full_path}.subspan(
      1, full_path.size() - 2);
  const auto id = interner_->intern(middle);
  return RouteEntry{
      .announced = prefix, .full_path = std::move(full_path), .middle = id};
}

void RoutingState::announce(CloudLocationId location, const Prefix& prefix,
                            AsPath full_path) {
  auto entry = make_entry(prefix, std::move(full_path));
  auto& timeline = timelines_[key_of(location, prefix)];
  if (timeline.change_count() != 0) {
    throw std::invalid_argument{"RoutingState: prefix already announced"};
  }
  timeline.set_route(util::MinuteTime{0}, entry);
  prefixes_[location].push_back(prefix);
  churn_log_.push_back(ChurnEvent{.time = util::MinuteTime{0},
                                  .location = location,
                                  .prefix = prefix,
                                  .kind = ChurnKind::Announce,
                                  .old_route = std::nullopt,
                                  .new_route = std::move(entry)});
}

void RoutingState::change_path(CloudLocationId location, const Prefix& prefix,
                               util::MinuteTime when, AsPath new_full_path) {
  const auto it = timelines_.find(key_of(location, prefix));
  if (it == timelines_.end()) {
    throw std::invalid_argument{"RoutingState: change on unannounced prefix"};
  }
  const RouteEntry* old_route = it->second.route_at(when);
  auto entry = make_entry(prefix, std::move(new_full_path));
  churn_log_.push_back(ChurnEvent{
      .time = when,
      .location = location,
      .prefix = prefix,
      .kind = ChurnKind::PathChange,
      .old_route = old_route ? std::optional<RouteEntry>{*old_route}
                             : std::nullopt,
      .new_route = entry});
  it->second.set_route(when, std::move(entry));
}

void RoutingState::note_steer_shift(CloudLocationId location,
                                    const Prefix& prefix,
                                    util::MinuteTime when) {
  const auto it = timelines_.find(key_of(location, prefix));
  if (it == timelines_.end()) {
    throw std::invalid_argument{
        "RoutingState: steer shift on unannounced prefix"};
  }
  const RouteEntry* route = it->second.route_at(when);
  const auto copy = route ? std::optional<RouteEntry>{*route} : std::nullopt;
  churn_log_.push_back(ChurnEvent{.time = when,
                                  .location = location,
                                  .prefix = prefix,
                                  .kind = ChurnKind::SteerShift,
                                  .old_route = copy,
                                  .new_route = copy});
}

const RouteEntry* RoutingState::route_for(CloudLocationId location,
                                          Slash24 client,
                                          util::MinuteTime when) const {
  // Longest-prefix match over the location's announced prefixes. Tables here
  // are small; linear scan keeps the structure simple. (Telemetry generation
  // caches routes per /24, so this is not on the hot path.)
  const auto pit = prefixes_.find(location);
  if (pit == prefixes_.end()) return nullptr;
  const RouteEntry* best = nullptr;
  std::uint8_t best_len = 0;
  for (const auto& prefix : pit->second) {
    if (!prefix.contains(client)) continue;
    if (best && prefix.length < best_len) continue;
    const auto tit = timelines_.find(key_of(location, prefix));
    if (tit == timelines_.end()) continue;
    if (const RouteEntry* route = tit->second.route_at(when)) {
      best = route;
      best_len = prefix.length;
    }
  }
  return best;
}

const RouteTimeline* RoutingState::timeline(CloudLocationId location,
                                            const Prefix& prefix) const {
  const auto it = timelines_.find(key_of(location, prefix));
  return it == timelines_.end() ? nullptr : &it->second;
}

std::vector<ChurnEvent> RoutingState::churn_between(
    util::MinuteTime from, util::MinuteTime to) const {
  std::vector<ChurnEvent> out;
  for (const auto& ev : churn_log_) {
    if (ev.time >= from && ev.time < to) out.push_back(ev);
  }
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    return a.time < b.time;
  });
  return out;
}

const std::vector<Prefix>& RoutingState::prefixes_at(
    CloudLocationId location) const {
  static const std::vector<Prefix> kEmpty;
  const auto it = prefixes_.find(location);
  return it == prefixes_.end() ? kEmpty : it->second;
}

}  // namespace blameit::net
