#include "net/geo.h"

#include <stdexcept>

namespace blameit::net {

std::string_view to_string(Region r) noexcept {
  switch (r) {
    case Region::UnitedStates: return "USA";
    case Region::Europe: return "Europe";
    case Region::India: return "India";
    case Region::China: return "China";
    case Region::Brazil: return "Brazil";
    case Region::Australia: return "Australia";
    case Region::EastAsia: return "EastAsia";
  }
  return "?";
}

const RegionProfile& region_profile(Region r) noexcept {
  // Thresholds (ms) loosely follow public inter-region RTT scales; what
  // matters for the reproduction is their *relation* to base RTTs:
  // the USA threshold is deliberately tight (paper §2.2 attributes the high
  // US bad-quartet fraction to aggressive targets), while India/China/Brazil
  // have high transit fault rates (Fig 9: middle dominates there).
  static const std::array<RegionProfile, 7> kProfiles = {{
      {Region::UnitedStates, /*rtt_target_ms=*/50.0, /*mobile_extra_ms=*/30.0,
       /*base_rtt_ms=*/28.0, /*transit_fault_rate=*/0.8,
       /*client_fault_rate=*/1.0},
      {Region::Europe, 60.0, 30.0, 30.0, 0.7, 0.9},
      {Region::India, 110.0, 50.0, 55.0, 2.4, 1.6},
      {Region::China, 120.0, 50.0, 60.0, 2.2, 1.4},
      {Region::Brazil, 110.0, 50.0, 52.0, 2.0, 1.5},
      {Region::Australia, 90.0, 40.0, 42.0, 1.0, 1.0},
      {Region::EastAsia, 80.0, 40.0, 38.0, 1.2, 1.1},
  }};
  return kProfiles[static_cast<std::size_t>(r)];
}

}  // namespace blameit::net
