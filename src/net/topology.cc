#include "net/topology.h"

#include <algorithm>
#include <array>
#include <bit>
#include <cmath>
#include <stdexcept>
#include <string>

namespace blameit::net {

namespace {

constexpr std::uint32_t kCloudAsn = 8075;

// Approximate inter-region backbone one-way latencies (ms) between the
// regions' international gateway transits. Symmetric.
double inter_region_ms(Region a, Region b) {
  static constexpr std::array<std::array<double, 7>, 7> kMatrix = {{
      //            USA   EU   India China Brazil Austr EAsia
      /*USA*/ {{0, 40, 110, 75, 60, 75, 55}},
      /*EU*/ {{40, 0, 60, 90, 95, 130, 95}},
      /*India*/ {{110, 60, 0, 45, 150, 70, 40}},
      /*China*/ {{75, 90, 45, 0, 160, 60, 20}},
      /*Brazil*/ {{60, 95, 150, 160, 0, 140, 130}},
      /*Austr*/ {{75, 130, 70, 60, 140, 0, 50}},
      /*EAsia*/ {{55, 95, 40, 20, 130, 50, 0}},
  }};
  return kMatrix[static_cast<std::size_t>(a)][static_cast<std::size_t>(b)];
}

std::uint64_t loc_prefix_key(CloudLocationId loc, const Prefix& p) noexcept {
  return (std::uint64_t{loc.value} << 40) | (std::uint64_t{p.network} << 8) |
         p.length;
}

}  // namespace

Topology::Topology(const TopologyConfig& config) : config_(config) {
  if (config_.locations_per_region < 1 || config_.transits_per_region < 2 ||
      config_.eyeballs_per_region < 1 || config_.blocks_per_eyeball < 1 ||
      config_.metros_per_region < 1 || config_.blocks_per_prefix < 1) {
    throw std::invalid_argument{"TopologyConfig: all sizes must be positive"};
  }
  if ((config_.blocks_per_prefix & (config_.blocks_per_prefix - 1)) != 0 ||
      config_.blocks_per_prefix > 256) {
    throw std::invalid_argument{
        "TopologyConfig: blocks_per_prefix must be a power of two <= 256"};
  }
  if (config_.blocks_per_eyeball > 256) {
    throw std::invalid_argument{
        "TopologyConfig: blocks_per_eyeball must be <= 256 (each eyeball "
        "owns one /16 of the 10.0.0.0 address plan)"};
  }
  // Eyeball /16s are carved consecutively from 10.0.0.0 upward; the whole
  // plan must stay inside 32-bit IPv4 space.
  const auto total_eyeballs = static_cast<std::uint64_t>(kAllRegions.size()) *
                              static_cast<std::uint64_t>(
                                  config_.eyeballs_per_region);
  if ((10u << 16) + total_eyeballs * 256 > (std::uint64_t{1} << 24)) {
    throw std::invalid_argument{
        "TopologyConfig: too many eyeballs for the address plan (max "
        "~62,000 across all regions)"};
  }
  util::Rng rng{config_.seed};
  build_ases_and_links(rng);
  build_locations(rng);
  build_blocks(rng);
  build_routes();
}

void Topology::build_ases_and_links(util::Rng& rng) {
  cloud_as_ = AsId{kCloudAsn};
  registry_.add(AsInfo{cloud_as_, AsType::Cloud, Region::UnitedStates,
                       "CloudNet"});

  // Per region: one "global" international-gateway transit plus
  // (transits_per_region - 1) regional transits. Regional transits are
  // customers of their region's global transit; global transits peer in a
  // full mesh across regions; the cloud buys transit from every transit AS
  // it touches (so valley-free paths may climb out of the cloud, cross one
  // peering link at the top, and descend to the client).
  for (const Region region : kAllRegions) {
    const auto r = static_cast<std::uint32_t>(region);
    std::vector<AsId>& transits = region_transits_[region];
    const AsId global{1000 + r * 100};
    registry_.add(AsInfo{global, AsType::Transit, region,
                         std::string{to_string(region)} + "-GlobalTransit"});
    transits.push_back(global);
    for (int i = 1; i < config_.transits_per_region; ++i) {
      const AsId transit{1000 + r * 100 + static_cast<std::uint32_t>(i)};
      registry_.add(AsInfo{transit, AsType::Transit, region,
                           std::string{to_string(region)} + "-Transit" +
                               std::to_string(i)});
      transits.push_back(transit);
    }
  }

  graph_ = std::make_unique<AsGraph>(&registry_);

  // Global transit full mesh (peering), latency from the region matrix.
  for (std::size_t i = 0; i < kAllRegions.size(); ++i) {
    for (std::size_t j = i + 1; j < kAllRegions.size(); ++j) {
      const AsId gi = region_transits_[kAllRegions[i]].front();
      const AsId gj = region_transits_[kAllRegions[j]].front();
      graph_->add_link(AsLink{gi, gj, LinkKind::Peer,
                              inter_region_ms(kAllRegions[i], kAllRegions[j])});
    }
  }

  for (const Region region : kAllRegions) {
    const auto& transits = region_transits_[region];
    const AsId global = transits.front();
    // Regional transits buy transit from the gateway and peer among
    // themselves.
    for (std::size_t i = 1; i < transits.size(); ++i) {
      graph_->add_link(AsLink{transits[i], global, LinkKind::CustomerOf,
                              rng.uniform(2.5, 6.0)});
      for (std::size_t j = i + 1; j < transits.size(); ++j) {
        graph_->add_link(AsLink{transits[i], transits[j], LinkKind::Peer,
                                rng.uniform(1.5, 4.0)});
      }
    }
    // Cloud buys from every transit in the region (gateway included).
    for (const AsId transit : transits) {
      graph_->add_link(AsLink{cloud_as_, transit, LinkKind::CustomerOf,
                              rng.uniform(1.5, 4.5)});
    }

    // Eyeball ISPs: customers of 1-2 regional transits; a few also buy from
    // the gateway directly.
    const auto r = static_cast<std::uint32_t>(region);
    std::vector<AsId>& eyeballs = region_eyeballs_[region];
    for (int i = 0; i < config_.eyeballs_per_region; ++i) {
      const AsId isp{20000 + r * 1000 + static_cast<std::uint32_t>(i)};
      registry_.add(AsInfo{isp, AsType::Eyeball, region,
                           std::string{to_string(region)} + "-ISP" +
                               std::to_string(i)});
      eyeballs.push_back(isp);
      const auto first =
          transits[1 + static_cast<std::size_t>(rng.uniform_int(
                      0, static_cast<std::int64_t>(transits.size()) - 2))];
      graph_->add_link(
          AsLink{isp, first, LinkKind::CustomerOf, rng.uniform(2.5, 8.0)});
      if (transits.size() > 2 && rng.chance(0.85)) {
        // Multihome to a second, distinct regional transit.
        AsId second = first;
        while (second == first) {
          second = transits[1 + static_cast<std::size_t>(rng.uniform_int(
                       0, static_cast<std::int64_t>(transits.size()) - 2))];
        }
        graph_->add_link(
            AsLink{isp, second, LinkKind::CustomerOf, rng.uniform(2.5, 8.0)});
      }
      if (rng.chance(0.25)) {
        graph_->add_link(
            AsLink{isp, global, LinkKind::CustomerOf, rng.uniform(3.0, 9.0)});
      }
    }
  }
}

void Topology::build_locations(util::Rng& rng) {
  std::uint16_t next_metro = 0;
  std::uint16_t next_location = 0;
  for (const Region region : kAllRegions) {
    for (int m = 0; m < config_.metros_per_region; ++m) {
      metros_.push_back(Metro{MetroId{next_metro++}, region,
                              std::string{to_string(region)} + "-metro" +
                                  std::to_string(m)});
    }
    const auto& transits = region_transits_[region];
    for (int l = 0; l < config_.locations_per_region; ++l) {
      CloudLocation loc;
      loc.id = CloudLocationId{next_location++};
      loc.name = std::string{to_string(region)} + "-edge" + std::to_string(l);
      loc.region = region;
      loc.metro = metros_[metros_.size() -
                          static_cast<std::size_t>(config_.metros_per_region) +
                          static_cast<std::size_t>(
                              l % config_.metros_per_region)]
                      .id;
      // Every location can egress through every transit in its region; the
      // gateway is always present so cross-region routes exist everywhere.
      loc.egress_peers = transits;
      loc.cloud_segment_ms = rng.uniform(3.0, 6.0);
      locations_.push_back(std::move(loc));
    }
  }
}

void Topology::build_blocks(util::Rng& rng) {
  // Address plan: eyeball #g (global index) owns 10.g.0.0/16; its j-th /24 is
  // 10.g.j.0/24; announced prefixes group blocks_per_prefix consecutive /24s.
  const auto prefix_len =
      static_cast<std::uint8_t>(24 - std::countr_zero(
          static_cast<unsigned>(config_.blocks_per_prefix)));
  std::uint32_t eyeball_index = 0;
  std::size_t total_blocks = 0;
  for (const Region region : kAllRegions) {
    total_blocks += region_eyeballs_[region].size() *
                    static_cast<std::size_t>(config_.blocks_per_eyeball);
  }

  // Zipf-skewed activity weights over a random permutation of blocks (§2.4:
  // affected clients concentrate in a small number of prefixes).
  std::vector<double> weights(total_blocks);
  for (std::size_t i = 0; i < total_blocks; ++i) {
    weights[i] = 1.0 / std::pow(static_cast<double>(i + 1), 0.9);
  }
  for (std::size_t i = weights.size(); i > 1; --i) {
    std::swap(weights[i - 1], weights[static_cast<std::size_t>(
                                  rng.uniform_int(0, static_cast<std::int64_t>(i) - 1))]);
  }

  std::size_t weight_idx = 0;
  for (const Region region : kAllRegions) {
    const auto& profile = region_profile(region);
    const auto region_metros = [&] {
      std::vector<MetroId> ids;
      for (const auto& metro : metros_) {
        if (metro.region == region) ids.push_back(metro.id);
      }
      return ids;
    }();
    for (const AsId isp : region_eyeballs_[region]) {
      for (int j = 0; j < config_.blocks_per_eyeball; ++j) {
        ClientBlock cb;
        // Arithmetic (not OR-packed) so eyeball #256+ rolls into the next
        // first octet instead of colliding with eyeball #0 — identical bits
        // to the original 10.g.j plan for g < 256.
        cb.block = Slash24{(10u << 16) + eyeball_index * 256u +
                           static_cast<std::uint32_t>(j)};
        cb.client_as = isp;
        cb.region = region;
        cb.metro = region_metros[static_cast<std::size_t>(j) %
                                 region_metros.size()];
        cb.announced = Prefix::of(
            cb.block.base(),
            static_cast<std::uint8_t>(prefix_len));
        cb.access_latency_ms =
            profile.base_rtt_ms * rng.uniform(0.35, 0.6);
        cb.mobile_extra_ms = rng.uniform(15.0, 35.0);
        cb.activity_weight = weights[weight_idx++];
        cb.enterprise_fraction = rng.uniform(0.2, 0.8);
        block_index_.emplace(cb.block, blocks_.size());
        blocks_.push_back(std::move(cb));
      }
      ++eyeball_index;
    }
  }

  // Anycast homes: all in-region locations, rotated per block so primaries
  // are balanced across the region's edges.
  for (const auto& cb : blocks_) {
    auto in_region = locations_in(cb.region);
    if (in_region.empty()) {
      throw std::logic_error{"Topology: region without cloud locations"};
    }
    std::rotate(in_region.begin(),
                in_region.begin() +
                    static_cast<std::ptrdiff_t>(cb.block.block %
                                                in_region.size()),
                in_region.end());
    homes_.emplace(cb.block, std::move(in_region));
  }
}

void Topology::build_routes() {
  // Candidate AS paths depend only on the destination eyeball; compute all
  // eyeballs in one core DFS (bit-identical to per-eyeball k_paths, but
  // O(eyeballs) cheaper — the difference between milliseconds and minutes at
  // the 1M-/24 scale), then filter per location by permissible first hop.
  // The candidate pool must be generous: a far-away location's usable paths
  // (first hop restricted to its own egress transits) are much longer than
  // the global shortest, so a small k would truncate them away.
  const auto candidates = graph_->eyeball_paths(cloud_as_, 512);

  // Announced prefixes: one per blocks_per_prefix-aligned group; all /24s in
  // the group share the eyeball, so any block in the group identifies it.
  std::unordered_map<Prefix, AsId> prefix_owner;
  for (const auto& cb : blocks_) prefix_owner.emplace(cb.announced, cb.client_as);

  routing_ = std::make_unique<RoutingState>(&interner_);
  for (const auto& loc : locations_) {
    for (const auto& [prefix, eyeball] : prefix_owner) {
      const auto& all_paths = candidates.at(eyeball);
      std::vector<AsPath> usable;
      for (const auto& path : all_paths) {
        if (path.size() < 2) continue;
        const AsId first_hop = path[1];
        if (std::find(loc.egress_peers.begin(), loc.egress_peers.end(),
                      first_hop) != loc.egress_peers.end()) {
          usable.push_back(path);
          if (usable.size() ==
              static_cast<std::size_t>(config_.alternates)) {
            break;
          }
        }
      }
      if (usable.empty()) {
        throw std::logic_error{"Topology: no valley-free route from " +
                               loc.name + " to " + eyeball.to_string()};
      }
      // BGP policy diversity: different prefixes toward the same eyeball
      // often take different (equally short) paths in practice. Spread the
      // installed route across the shortest usable candidates by a
      // deterministic per-(location, prefix) hash, so middle segments do not
      // collapse onto one transit per region.
      std::size_t shortest = 0;
      while (shortest + 1 < usable.size() &&
             usable[shortest + 1].size() == usable.front().size()) {
        ++shortest;
      }
      const auto pick = static_cast<std::size_t>(
          util::hash_combine(config_.seed ^ 0xB69u,
                             loc_prefix_key(loc.id, prefix)) %
          (shortest + 1));
      std::swap(usable[0], usable[pick]);
      routing_->announce(loc.id, prefix, usable.front());
      alternates_.emplace(loc_prefix_key(loc.id, prefix), std::move(usable));
    }
  }
}

const CloudLocation& Topology::location(CloudLocationId id) const {
  for (const auto& loc : locations_) {
    if (loc.id == id) return loc;
  }
  throw std::out_of_range{"Topology: unknown " + id.to_string()};
}

std::vector<CloudLocationId> Topology::locations_in(Region r) const {
  std::vector<CloudLocationId> out;
  for (const auto& loc : locations_) {
    if (loc.region == r) out.push_back(loc.id);
  }
  return out;
}

const ClientBlock* Topology::find_block(Slash24 b) const noexcept {
  const auto it = block_index_.find(b);
  return it == block_index_.end() ? nullptr : &blocks_[it->second];
}

const std::vector<AsPath>& Topology::alternates(CloudLocationId location,
                                                const Prefix& prefix) const {
  static const std::vector<AsPath> kEmpty;
  const auto it = alternates_.find(loc_prefix_key(location, prefix));
  return it == alternates_.end() ? kEmpty : it->second;
}

const std::vector<CloudLocationId>& Topology::home_locations(
    Slash24 block) const {
  static const std::vector<CloudLocationId> kEmpty;
  const auto it = homes_.find(block);
  return it == homes_.end() ? kEmpty : it->second;
}

std::unique_ptr<Topology> make_topology(const TopologyConfig& config) {
  return std::make_unique<Topology>(config);
}

}  // namespace blameit::net
