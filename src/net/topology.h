// Synthetic Internet generator: one cloud AS with edge locations across all
// regions, a tiered transit fabric, eyeball (client) ISPs, client /24 blocks
// with announced BGP prefixes, and the full time-zero routing state.
//
// This substrate replaces Azure's production environment (see DESIGN.md §1).
// Everything is deterministic given TopologyConfig::seed.
#pragma once

#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "net/as_graph.h"
#include "net/asn.h"
#include "net/bgp.h"
#include "net/cloud.h"
#include "net/geo.h"
#include "net/ipv4.h"
#include "util/rng.h"

namespace blameit::net {

/// One client /24 block with everything the simulator needs to synthesize
/// its traffic.
struct ClientBlock {
  Slash24 block;
  AsId client_as;
  Region region{};
  MetroId metro;
  Prefix announced;  ///< covering BGP-announced prefix (coarser than /24)
  /// Last-mile contribution to RTT for non-mobile clients (ms).
  double access_latency_ms = 12.0;
  /// Additional last-mile latency for mobile (cellular) clients (ms).
  double mobile_extra_ms = 25.0;
  /// Relative client-population weight (Zipf-skewed across blocks, §2.4).
  double activity_weight = 1.0;
  /// Fraction of this block's connections coming from enterprise networks
  /// (daytime-heavy); the rest follow a home-ISP evening pattern (§2.2).
  double enterprise_fraction = 0.5;
};

struct TopologyConfig {
  std::uint64_t seed = 42;
  int locations_per_region = 2;
  int transits_per_region = 4;
  int eyeballs_per_region = 8;
  int metros_per_region = 4;
  int blocks_per_eyeball = 8;
  /// /24 blocks per announced BGP prefix (4 → /22 announcements).
  int blocks_per_prefix = 4;
  /// Alternate paths retained per (location, prefix) for churn simulation.
  int alternates = 3;
};

/// The generated internet. Non-copyable/non-movable: internal structures
/// hold pointers into each other, so the object must stay put (create via
/// make_topology, hold by unique_ptr).
class Topology {
 public:
  explicit Topology(const TopologyConfig& config);
  Topology(const Topology&) = delete;
  Topology& operator=(const Topology&) = delete;

  [[nodiscard]] const TopologyConfig& config() const noexcept {
    return config_;
  }
  [[nodiscard]] const AsRegistry& registry() const noexcept {
    return registry_;
  }
  [[nodiscard]] const AsGraph& graph() const noexcept { return *graph_; }
  [[nodiscard]] AsId cloud_as() const noexcept { return cloud_as_; }

  [[nodiscard]] const std::vector<CloudLocation>& locations() const noexcept {
    return locations_;
  }
  [[nodiscard]] const CloudLocation& location(CloudLocationId id) const;
  [[nodiscard]] std::vector<CloudLocationId> locations_in(Region r) const;

  [[nodiscard]] const std::vector<Metro>& metros() const noexcept {
    return metros_;
  }
  [[nodiscard]] const std::vector<ClientBlock>& blocks() const noexcept {
    return blocks_;
  }
  [[nodiscard]] const ClientBlock* find_block(Slash24 b) const noexcept;

  [[nodiscard]] RoutingState& routing() noexcept { return *routing_; }
  [[nodiscard]] const RoutingState& routing() const noexcept {
    return *routing_;
  }
  [[nodiscard]] const MiddleSegmentInterner& interner() const noexcept {
    return interner_;
  }

  /// Valley-free alternates (including the installed best path, first) for a
  /// (location, announced prefix) pair; used to synthesize BGP churn.
  [[nodiscard]] const std::vector<AsPath>& alternates(
      CloudLocationId location, const Prefix& prefix) const;

  /// In-region locations a block's clients are anycast-routed to, nearest
  /// (primary) first. Never empty for generated blocks.
  [[nodiscard]] const std::vector<CloudLocationId>& home_locations(
      Slash24 block) const;

 private:
  void build_ases_and_links(util::Rng& rng);
  void build_locations(util::Rng& rng);
  void build_blocks(util::Rng& rng);
  void build_routes();

  TopologyConfig config_;
  AsRegistry registry_;
  std::unique_ptr<AsGraph> graph_;
  AsId cloud_as_;
  std::vector<CloudLocation> locations_;
  std::vector<Metro> metros_;
  std::vector<ClientBlock> blocks_;
  std::unordered_map<Slash24, std::size_t> block_index_;
  MiddleSegmentInterner interner_;
  std::unique_ptr<RoutingState> routing_;
  // Per-region transit/eyeball id pools (used during construction and by
  // tests that want to poke specific ASes).
  std::unordered_map<Region, std::vector<AsId>> region_transits_;
  std::unordered_map<Region, std::vector<AsId>> region_eyeballs_;
  std::unordered_map<std::uint64_t, std::vector<AsPath>> alternates_;
  std::unordered_map<Slash24, std::vector<CloudLocationId>> homes_;

 public:
  [[nodiscard]] const std::vector<AsId>& transits_in(Region r) const {
    static const std::vector<AsId> kEmpty;
    const auto it = region_transits_.find(r);
    return it == region_transits_.end() ? kEmpty : it->second;
  }
  [[nodiscard]] const std::vector<AsId>& eyeballs_in(Region r) const {
    static const std::vector<AsId> kEmpty;
    const auto it = region_eyeballs_.find(r);
    return it == region_eyeballs_.end() ? kEmpty : it->second;
  }
};

/// Factory: builds the full synthetic internet for a config.
[[nodiscard]] std::unique_ptr<Topology> make_topology(
    const TopologyConfig& config = {});

}  // namespace blameit::net
