// BGP routing state: announced prefixes, per-⟨cloud location, client prefix⟩
// route timelines, the interned "middle segment" (the paper's BGP path — the
// set of ASes between cloud and client, §3.1), and the churn feed consumed by
// BlameIt's background prober (§5.4).
//
// Routes are time-indexed: a RouteTimeline records the route in effect over
// simulated time, so telemetry generation, traceroute simulation, and the
// BGP listener all observe one consistent routing history.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/as_graph.h"
#include "net/asn.h"
#include "net/cloud.h"
#include "net/ipv4.h"
#include "util/time.h"

namespace blameit::net {

/// Interned identifier for a middle-AS sequence (the paper's "BGP path").
struct MiddleSegmentId {
  std::uint32_t value = 0;
  constexpr auto operator<=>(const MiddleSegmentId&) const = default;
  [[nodiscard]] std::string to_string() const {
    return "mid-" + std::to_string(value);
  }
};

/// Interns middle-AS sequences so quartets can group on a compact id.
class MiddleSegmentInterner {
 public:
  /// Returns the id for the sequence, creating it if new.
  MiddleSegmentId intern(std::span<const AsId> middle_ases);

  /// Lookup without creating; nullopt when the sequence is unknown.
  [[nodiscard]] std::optional<MiddleSegmentId> find(
      std::span<const AsId> middle_ases) const;

  [[nodiscard]] const std::vector<AsId>& ases(MiddleSegmentId id) const;
  [[nodiscard]] std::size_t size() const noexcept { return segments_.size(); }
  [[nodiscard]] std::string describe(MiddleSegmentId id) const;

 private:
  [[nodiscard]] static std::string key_of(std::span<const AsId> ases);

  std::vector<std::vector<AsId>> segments_;
  std::unordered_map<std::string, std::uint32_t> index_;
};

/// A route from one cloud location toward one announced client prefix.
struct RouteEntry {
  Prefix announced;          ///< BGP-announced prefix covering the client /24s
  AsPath full_path;          ///< cloud AS, middle ASes..., client AS
  MiddleSegmentId middle;    ///< interned middle portion of full_path

  /// Middle ASes (full path minus the cloud and client endpoints).
  [[nodiscard]] std::span<const AsId> middle_ases() const noexcept {
    if (full_path.size() < 2) return {};
    return std::span<const AsId>{full_path}.subspan(1, full_path.size() - 2);
  }
  [[nodiscard]] AsId cloud_as() const { return full_path.front(); }
  [[nodiscard]] AsId client_as() const { return full_path.back(); }
};

/// Kinds of routing-change events surfaced by the BGP listener (§5.4).
/// SteerShift is an anycast/traffic-engineering steer: the BGP route is
/// unchanged but clients of the prefix were moved to a different serving
/// location, so their destination-edge latency shifts without any AS fault.
enum class ChurnKind : std::uint8_t { PathChange, Withdraw, Announce,
                                      SteerShift };

struct ChurnEvent {
  util::MinuteTime time;
  CloudLocationId location;
  Prefix prefix;
  ChurnKind kind{};
  std::optional<RouteEntry> old_route;  ///< empty for Announce
  std::optional<RouteEntry> new_route;  ///< empty for Withdraw; for
                                        ///< SteerShift both equal the route
                                        ///< still in effect
};

/// The route history for one ⟨cloud location, announced prefix⟩ pair.
class RouteTimeline {
 public:
  /// Appends a change effective at `when`; times must be non-decreasing.
  void set_route(util::MinuteTime when, RouteEntry route);

  /// Route in effect at `when`; nullopt before the first announcement.
  [[nodiscard]] const RouteEntry* route_at(util::MinuteTime when) const noexcept;

  [[nodiscard]] std::size_t change_count() const noexcept {
    return changes_.size();
  }

 private:
  std::vector<std::pair<util::MinuteTime, RouteEntry>> changes_;
};

/// Global routing state: per-location BGP tables over time plus the churn
/// event log that feeds BlameIt's listener-triggered probing.
class RoutingState {
 public:
  explicit RoutingState(MiddleSegmentInterner* interner);

  /// Installs the initial route for (location, prefix) at time 0 (Announce).
  void announce(CloudLocationId location, const Prefix& prefix,
                AsPath full_path);

  /// Replaces the route at `when` and records a PathChange churn event.
  void change_path(CloudLocationId location, const Prefix& prefix,
                   util::MinuteTime when, AsPath new_full_path);

  /// Records a SteerShift churn event at `when` for clients of `prefix`
  /// served from `location` (anycast re-steer). The route timeline is NOT
  /// touched — steering moves traffic, not BGP state — so events may be
  /// noted out of timeline order.
  void note_steer_shift(CloudLocationId location, const Prefix& prefix,
                        util::MinuteTime when);

  /// Route for a client /24 from a location at a time; nullopt when no
  /// covering prefix is announced.
  [[nodiscard]] const RouteEntry* route_for(CloudLocationId location,
                                            Slash24 client,
                                            util::MinuteTime when) const;

  /// Direct handle to the (location, prefix) timeline for hot-path callers
  /// that already know the announced prefix (avoids the longest-prefix scan).
  /// Stable for the lifetime of the RoutingState. Null when unannounced.
  [[nodiscard]] const RouteTimeline* timeline(CloudLocationId location,
                                              const Prefix& prefix) const;

  /// All churn events in [from, to), time-ordered (the BGP listener feed).
  [[nodiscard]] std::vector<ChurnEvent> churn_between(
      util::MinuteTime from, util::MinuteTime to) const;

  /// Announced prefixes at a location (stable order).
  [[nodiscard]] const std::vector<Prefix>& prefixes_at(
      CloudLocationId location) const;

  [[nodiscard]] MiddleSegmentInterner& interner() noexcept {
    return *interner_;
  }
  [[nodiscard]] const MiddleSegmentInterner& interner() const noexcept {
    return *interner_;
  }

  /// Number of (location, prefix) route timelines.
  [[nodiscard]] std::size_t table_size() const noexcept {
    return timelines_.size();
  }

 private:
  struct LocPrefixKey {
    std::uint64_t packed;
    bool operator==(const LocPrefixKey&) const = default;
  };
  struct LocPrefixHash {
    std::size_t operator()(const LocPrefixKey& k) const noexcept {
      return std::hash<std::uint64_t>{}(k.packed);
    }
  };
  [[nodiscard]] static LocPrefixKey key_of(CloudLocationId loc,
                                           const Prefix& p) noexcept;

  [[nodiscard]] RouteEntry make_entry(const Prefix& prefix,
                                      AsPath full_path) const;

  MiddleSegmentInterner* interner_;
  std::unordered_map<LocPrefixKey, RouteTimeline, LocPrefixHash> timelines_;
  std::unordered_map<CloudLocationId, std::vector<Prefix>> prefixes_;
  std::vector<ChurnEvent> churn_log_;
};

}  // namespace blameit::net

template <>
struct std::hash<blameit::net::MiddleSegmentId> {
  std::size_t operator()(const blameit::net::MiddleSegmentId& m) const noexcept {
    return std::hash<std::uint32_t>{}(m.value);
  }
};
