#include "store/encoding.h"

#include <cstring>

namespace blameit::store {

void put_u32(std::string& out, std::uint32_t v) {
  char buf[4];
  for (int i = 0; i < 4; ++i) buf[i] = static_cast<char>((v >> (8 * i)) & 0xFF);
  out.append(buf, 4);
}

void put_u64(std::string& out, std::uint64_t v) {
  char buf[8];
  for (int i = 0; i < 8; ++i) buf[i] = static_cast<char>((v >> (8 * i)) & 0xFF);
  out.append(buf, 8);
}

void put_varint(std::string& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<char>((v & 0x7F) | 0x80));
    v >>= 7;
  }
  out.push_back(static_cast<char>(v));
}

void put_svarint(std::string& out, std::int64_t v) {
  put_varint(out, zigzag(v));
}

void put_f64(std::string& out, double v) {
  std::uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  put_u64(out, bits);
}

void put_string(std::string& out, std::string_view s) {
  put_varint(out, s.size());
  out.append(s.data(), s.size());
}

void ByteReader::need(std::size_t n, const char* what) const {
  if (data_.size() - pos_ < n) {
    fail(std::string{"unexpected end of data reading "} + what);
  }
}

std::uint8_t ByteReader::u8() {
  need(1, "u8");
  return static_cast<std::uint8_t>(data_[pos_++]);
}

std::uint32_t ByteReader::u32() {
  need(4, "u32");
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(static_cast<unsigned char>(data_[pos_ + i]))
         << (8 * i);
  }
  pos_ += 4;
  return v;
}

std::uint64_t ByteReader::u64() {
  need(8, "u64");
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(static_cast<unsigned char>(data_[pos_ + i]))
         << (8 * i);
  }
  pos_ += 8;
  return v;
}

std::uint64_t ByteReader::varint() {
  std::uint64_t v = 0;
  int shift = 0;
  for (;;) {
    need(1, "varint");
    const auto byte = static_cast<unsigned char>(data_[pos_++]);
    if (shift == 63 && (byte & 0xFE) != 0) fail("varint overflows 64 bits");
    v |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) return v;
    shift += 7;
    if (shift > 63) fail("varint longer than 10 bytes");
  }
}

std::int64_t ByteReader::svarint() { return unzigzag(varint()); }

double ByteReader::f64() {
  const std::uint64_t bits = u64();
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

std::string_view ByteReader::string() {
  const std::uint64_t n = varint();
  if (n > data_.size() - pos_) fail("string length exceeds available data");
  return bytes(static_cast<std::size_t>(n));
}

std::string_view ByteReader::bytes(std::size_t n) {
  need(n, "byte run");
  const std::string_view out = data_.substr(pos_, n);
  pos_ += n;
  return out;
}

void ByteReader::expect_done() const {
  if (!done()) {
    throw SnapshotError{context_ + ": " + std::to_string(remaining()) +
                        " trailing bytes at offset " + std::to_string(offset())};
  }
}

void ByteReader::fail(const std::string& what) const {
  throw SnapshotError{context_ + ": " + what + " at offset " +
                      std::to_string(offset())};
}

}  // namespace blameit::store
