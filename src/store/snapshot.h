// Versioned, checksummed snapshot container.
//
// A snapshot file is a sequence of named sections, each independently
// checksummed with util::Digest64 so corruption is localized to a section
// and reported with the exact byte offset:
//
//   offset 0   magic   "BLMTSNAP"                      (8 bytes)
//   offset 8   u32     format version (currently 1)
//   offset 12  u32     section count
//   then, per section:
//              varint  name length, name bytes
//              varint  payload length
//              u64     Digest64 of the payload bytes
//              raw     payload
//
// Sections are written in the order the writer created them and looked up
// by name on read, so components can be snapshotted/restored independently
// and a reader tolerates sections it does not know about (forward-compat
// within a format version). The reader validates the header and EVERY
// section checksum eagerly at open — a torn write or bit flip fails fast
// with a message naming the file, the section, and the offset, never as a
// silently wrong restore.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "store/encoding.h"

namespace blameit::store {

inline constexpr std::string_view kSnapshotMagic = "BLMTSNAP";
inline constexpr std::uint32_t kSnapshotVersion = 1;

/// Accumulates named sections in memory, then writes the whole file at
/// once (write to a temp buffer, single ofstream write) so a crash mid-save
/// cannot leave a half-written file that passes the header check.
class SnapshotWriter {
 public:
  /// Starts a new section and returns its payload buffer; append with the
  /// put_* helpers. Section names must be unique per snapshot.
  std::string& section(std::string name);

  /// Serializes header + all sections. Throws SnapshotError on I/O failure
  /// or duplicate section names.
  void write_file(const std::string& path) const;

  /// The full serialized byte stream (what write_file persists) — used by
  /// tests and in-memory round trips.
  [[nodiscard]] std::string serialize() const;

 private:
  std::vector<std::pair<std::string, std::string>> sections_;
};

/// Parses and validates a snapshot file: magic, version, and every section
/// checksum, all eagerly at construction.
class SnapshotReader {
 public:
  /// Loads from a file. Throws SnapshotError naming the path and offset on
  /// any structural or checksum problem.
  static SnapshotReader from_file(const std::string& path);
  /// Parses an in-memory byte stream; `origin` names it in error messages.
  static SnapshotReader from_bytes(std::string bytes, std::string origin);

  [[nodiscard]] bool has_section(std::string_view name) const;
  /// Positioned reader over a section's payload. Throws SnapshotError if
  /// the section is absent.
  [[nodiscard]] ByteReader section(std::string_view name) const;

 private:
  SnapshotReader() = default;
  void parse();

  std::string origin_;
  std::string bytes_;
  // name -> (payload offset in bytes_, payload length)
  std::map<std::string, std::pair<std::size_t, std::size_t>, std::less<>>
      sections_;
};

}  // namespace blameit::store
