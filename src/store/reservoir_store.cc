#include "store/reservoir_store.h"

#include <algorithm>
#include <chrono>
#include <stdexcept>

#include "util/rng.h"

namespace blameit::store {

namespace {

// Rough per-entry bookkeeping cost of an unordered_map node (bucket slot +
// node header); only feeds the memory gauges, never a decision.
constexpr std::size_t kHashNodeOverhead = 48;

}  // namespace

std::size_t ReservoirBlock::bytes() const noexcept {
  return keys.capacity() * sizeof(std::uint64_t) +
         days.capacity() * sizeof(std::int32_t) +
         offsets.capacity() * sizeof(std::uint32_t) +
         samples.capacity() * sizeof(double) + sizeof(*this);
}

ReservoirStore::ReservoirStore(ReservoirStoreConfig config)
    : config_(std::move(config)) {
  if (config_.reservoir_cap < 1 || config_.max_blocks < 1) {
    throw std::invalid_argument{
        "ReservoirStoreConfig: invalid reservoir_cap/max_blocks"};
  }
  const std::string& p = config_.metric_prefix;
  memtable_bytes_g_ = obs::gauge(config_.registry, p + ".memtable_bytes");
  block_count_g_ = obs::gauge(config_.registry, p + ".block_count");
  block_bytes_g_ = obs::gauge(config_.registry, p + ".block_bytes");
  merges_c_ = obs::counter(config_.registry, p + ".merges");
  merge_ms_h_ = obs::histogram(config_.registry, p + ".merge_ms");
}

ReservoirStore::~ReservoirStore() {
  if (pending_merge_.valid()) pending_merge_.wait();
}

void ReservoirStore::observe(std::uint64_t key, int day, double rtt_ms) {
  if (day < 0 || rtt_ms < 0.0) {
    throw std::invalid_argument{"ReservoirStore: negative day or RTT"};
  }
  if (day < memtable_day_) {
    throw std::invalid_argument{
        "ReservoirStore: observations must arrive day-ordered (all keys "
        "share one mutable day)"};
  }
  if (day > memtable_day_) {
    freeze_memtable();
    memtable_day_ = day;
  }
  auto [it, inserted] = memtable_.try_emplace(key);
  MemRow& row = it->second;
  if (inserted) ++meta_[key];
  ++row.seen;
  const auto cap = static_cast<std::size_t>(config_.reservoir_cap);
  if (row.sample.size() < cap) {
    row.sample.push_back(rtt_ms);
    ++memtable_samples_;
  } else {
    // Algorithm R, counter-seeded — the exact slot arithmetic of the hash
    // reference path, so the two backends keep identical samples.
    const std::uint64_t slot =
        util::hash_combine(
            key, util::hash_combine(static_cast<std::uint64_t>(day),
                                    row.seen)) %
        row.seen;
    if (slot < cap) row.sample[static_cast<std::size_t>(slot)] = rtt_ms;
  }
  obs::set(memtable_bytes_g_,
           static_cast<double>(memtable_.size() *
                                   (sizeof(MemRow) + kHashNodeOverhead) +
                               memtable_samples_ * sizeof(double)));
}

void ReservoirStore::freeze_memtable() {
  integrate_merge(/*wait=*/false);
  if (memtable_.empty()) return;

  auto block = std::make_shared<ReservoirBlock>();
  block->min_day = memtable_day_;
  block->max_day = memtable_day_;
  std::vector<std::uint64_t> keys;
  keys.reserve(memtable_.size());
  for (const auto& [key, row] : memtable_) keys.push_back(key);
  std::sort(keys.begin(), keys.end());

  block->keys = std::move(keys);
  block->days.assign(block->keys.size(), memtable_day_);
  block->offsets.reserve(block->keys.size() + 1);
  block->offsets.push_back(0);
  block->samples.reserve(memtable_samples_);
  for (const std::uint64_t key : block->keys) {
    const MemRow& row = memtable_.at(key);
    block->samples.insert(block->samples.end(), row.sample.begin(),
                          row.sample.end());
    block->offsets.push_back(
        static_cast<std::uint32_t>(block->samples.size()));
  }
  blocks_.push_back(std::move(block));
  memtable_.clear();
  memtable_samples_ = 0;
  maybe_start_merge();
  refresh_gauges();
}

void ReservoirStore::maybe_start_merge() {
  if (blocks_.size() <= static_cast<std::size_t>(config_.max_blocks)) return;
  if (pending_merge_.valid()) return;  // one merge in flight at a time

  std::vector<std::shared_ptr<const ReservoirBlock>> inputs = blocks_;
  if (!config_.background_merge) {
    const auto merged = merge_blocks(inputs);
    blocks_.assign(1, merged);
    obs::add(merges_c_);
    return;
  }
  pending_merge_ = std::async(
      std::launch::async, [inputs = std::move(inputs)]() mutable {
        const auto start = std::chrono::steady_clock::now();
        MergeResult result;
        result.merged = merge_blocks(inputs);
        result.inputs = std::move(inputs);
        result.elapsed_ms = std::chrono::duration<double, std::milli>(
                                std::chrono::steady_clock::now() - start)
                                .count();
        return result;
      });
}

void ReservoirStore::integrate_merge(bool wait) {
  if (!pending_merge_.valid()) return;
  if (!wait && pending_merge_.wait_for(std::chrono::seconds{0}) !=
                   std::future_status::ready) {
    return;
  }
  MergeResult result = pending_merge_.get();
  obs::record(merge_ms_h_, result.elapsed_ms);
  // Valid only if the inputs are still exactly the block-list prefix —
  // eviction may have dropped or rewritten one, in which case the merged
  // run contains rows that no longer exist.
  if (blocks_.size() < result.inputs.size()) return;
  for (std::size_t i = 0; i < result.inputs.size(); ++i) {
    if (blocks_[i] != result.inputs[i]) return;
  }
  blocks_.erase(blocks_.begin(),
                blocks_.begin() +
                    static_cast<std::ptrdiff_t>(result.inputs.size()));
  blocks_.insert(blocks_.begin(), result.merged);
  obs::add(merges_c_);
  refresh_gauges();
}

void ReservoirStore::flush_merges() {
  integrate_merge(/*wait=*/true);
}

std::shared_ptr<const ReservoirBlock> ReservoirStore::merge_blocks(
    const std::vector<std::shared_ptr<const ReservoirBlock>>& inputs) {
  struct RowRef {
    std::uint64_t key;
    std::int32_t day;
    const ReservoirBlock* block;
    std::size_t row;
  };
  std::vector<RowRef> rows;
  std::size_t total_rows = 0;
  std::size_t total_samples = 0;
  for (const auto& block : inputs) {
    total_rows += block->rows();
    total_samples += block->samples.size();
  }
  rows.reserve(total_rows);
  for (const auto& block : inputs) {
    for (std::size_t i = 0; i < block->rows(); ++i) {
      rows.push_back(RowRef{block->keys[i], block->days[i], block.get(), i});
    }
  }
  std::sort(rows.begin(), rows.end(), [](const RowRef& a, const RowRef& b) {
    return a.key != b.key ? a.key < b.key : a.day < b.day;
  });

  auto merged = std::make_shared<ReservoirBlock>();
  merged->keys.reserve(total_rows);
  merged->days.reserve(total_rows);
  merged->offsets.reserve(total_rows + 1);
  merged->offsets.push_back(0);
  merged->samples.reserve(total_samples);
  merged->min_day = INT_MAX;
  merged->max_day = INT_MIN;
  for (const RowRef& ref : rows) {
    merged->keys.push_back(ref.key);
    merged->days.push_back(ref.day);
    const auto begin = ref.block->offsets[ref.row];
    const auto end = ref.block->offsets[ref.row + 1];
    merged->samples.insert(merged->samples.end(),
                           ref.block->samples.begin() + begin,
                           ref.block->samples.begin() + end);
    merged->offsets.push_back(
        static_cast<std::uint32_t>(merged->samples.size()));
    merged->min_day = std::min(merged->min_day, static_cast<int>(ref.day));
    merged->max_day = std::max(merged->max_day, static_cast<int>(ref.day));
  }
  if (rows.empty()) {
    merged->min_day = 0;
    merged->max_day = 0;
  }
  return merged;
}

void ReservoirStore::note_row_removed(std::uint64_t key) {
  const auto it = meta_.find(key);
  if (it == meta_.end()) return;
  if (--it->second == 0) meta_.erase(it);
}

void ReservoirStore::drop_block_rows(const ReservoirBlock& block,
                                     int cutoff_day, std::size_t* dropped) {
  for (std::size_t i = 0; i < block.rows(); ++i) {
    if (block.days[i] < cutoff_day) {
      note_row_removed(block.keys[i]);
      ++*dropped;
    }
  }
}

std::size_t ReservoirStore::evict_stale(int cutoff_day) {
  integrate_merge(/*wait=*/false);
  std::size_t dropped = 0;

  std::vector<std::shared_ptr<const ReservoirBlock>> kept;
  kept.reserve(blocks_.size());
  for (const auto& block : blocks_) {
    if (block->max_day < cutoff_day) {
      // Whole block expired.
      drop_block_rows(*block, cutoff_day, &dropped);
      continue;
    }
    if (block->min_day >= cutoff_day) {
      kept.push_back(block);
      continue;
    }
    // Straddles the cutoff: rewrite with only the live rows.
    drop_block_rows(*block, cutoff_day, &dropped);
    auto rewritten = std::make_shared<ReservoirBlock>();
    rewritten->min_day = INT_MAX;
    rewritten->max_day = INT_MIN;
    rewritten->offsets.push_back(0);
    for (std::size_t i = 0; i < block->rows(); ++i) {
      if (block->days[i] < cutoff_day) continue;
      rewritten->keys.push_back(block->keys[i]);
      rewritten->days.push_back(block->days[i]);
      rewritten->samples.insert(
          rewritten->samples.end(),
          block->samples.begin() + block->offsets[i],
          block->samples.begin() + block->offsets[i + 1]);
      rewritten->offsets.push_back(
          static_cast<std::uint32_t>(rewritten->samples.size()));
      rewritten->min_day =
          std::min(rewritten->min_day, static_cast<int>(block->days[i]));
      rewritten->max_day =
          std::max(rewritten->max_day, static_cast<int>(block->days[i]));
    }
    if (!rewritten->keys.empty()) kept.push_back(std::move(rewritten));
  }
  blocks_ = std::move(kept);

  if (memtable_day_ != INT_MIN && memtable_day_ < cutoff_day &&
      !memtable_.empty()) {
    for (const auto& [key, row] : memtable_) {
      note_row_removed(key);
      ++dropped;
    }
    memtable_.clear();
    memtable_samples_ = 0;
    obs::set(memtable_bytes_g_, 0.0);
  }
  refresh_gauges();
  return dropped;
}

bool ReservoirStore::contains(std::uint64_t key) const {
  return meta_.find(key) != meta_.end();
}

void ReservoirStore::collect_window(std::uint64_t key, int day,
                                    int window_days,
                                    std::vector<double>& pool) const {
  const int low = day - window_days;  // inclusive; day itself excluded
  for (const auto& block : blocks_) {
    if (block->max_day < low || block->min_day >= day) continue;
    const auto [first, last] =
        std::equal_range(block->keys.begin(), block->keys.end(), key);
    for (auto it = first; it != last; ++it) {
      const auto i =
          static_cast<std::size_t>(it - block->keys.begin());
      if (block->days[i] >= day || block->days[i] < low) continue;
      pool.insert(pool.end(), block->samples.begin() + block->offsets[i],
                  block->samples.begin() + block->offsets[i + 1]);
    }
  }
  if (memtable_day_ >= low && memtable_day_ < day) {
    const auto it = memtable_.find(key);
    if (it != memtable_.end()) {
      pool.insert(pool.end(), it->second.sample.begin(),
                  it->second.sample.end());
    }
  }
}

std::size_t ReservoirStore::window_sample_count(std::uint64_t key, int day,
                                                int window_days) const {
  const int low = day - window_days;
  std::size_t n = 0;
  for (const auto& block : blocks_) {
    if (block->max_day < low || block->min_day >= day) continue;
    const auto [first, last] =
        std::equal_range(block->keys.begin(), block->keys.end(), key);
    for (auto it = first; it != last; ++it) {
      const auto i =
          static_cast<std::size_t>(it - block->keys.begin());
      if (block->days[i] >= day || block->days[i] < low) continue;
      n += block->offsets[i + 1] - block->offsets[i];
    }
  }
  if (memtable_day_ >= low && memtable_day_ < day) {
    const auto it = memtable_.find(key);
    if (it != memtable_.end()) n += it->second.sample.size();
  }
  return n;
}

std::size_t ReservoirStore::total_rows() const {
  std::size_t n = memtable_.size();
  for (const auto& block : blocks_) n += block->rows();
  return n;
}

std::size_t ReservoirStore::approx_bytes() const {
  std::size_t n = memtable_.size() * (sizeof(MemRow) + kHashNodeOverhead) +
                  memtable_samples_ * sizeof(double) +
                  meta_.size() * (sizeof(std::uint64_t) +
                                  sizeof(std::uint32_t) + kHashNodeOverhead);
  for (const auto& block : blocks_) n += block->bytes();
  return n;
}

void ReservoirStore::refresh_gauges() {
  obs::set(block_count_g_, static_cast<double>(blocks_.size()));
  std::size_t bytes = 0;
  for (const auto& block : blocks_) bytes += block->bytes();
  obs::set(block_bytes_g_, static_cast<double>(bytes));
}

void ReservoirStore::save(std::string& out) const {
  put_varint(out, 1);  // store payload format
  put_svarint(out, memtable_day_);

  // Memtable rows, key-sorted.
  std::vector<std::uint64_t> mem_keys;
  mem_keys.reserve(memtable_.size());
  for (const auto& [key, row] : memtable_) mem_keys.push_back(key);
  std::sort(mem_keys.begin(), mem_keys.end());
  put_varint(out, mem_keys.size());
  std::uint64_t prev = 0;
  for (const std::uint64_t key : mem_keys) {
    put_varint(out, key - prev);
    prev = key;
  }
  for (const std::uint64_t key : mem_keys) {
    put_varint(out, memtable_.at(key).seen);
  }
  for (const std::uint64_t key : mem_keys) {
    put_varint(out, memtable_.at(key).sample.size());
  }
  for (const std::uint64_t key : mem_keys) {
    for (const double v : memtable_.at(key).sample) put_f64(out, v);
  }

  // Frozen rows in a block-structure-independent normal form: globally
  // ⟨key, day⟩-sorted, so equal logical state serializes to equal bytes no
  // matter how far merging got.
  struct RowRef {
    std::uint64_t key;
    std::int32_t day;
    const ReservoirBlock* block;
    std::size_t row;
  };
  std::vector<RowRef> rows;
  for (const auto& block : blocks_) {
    for (std::size_t i = 0; i < block->rows(); ++i) {
      rows.push_back(RowRef{block->keys[i], block->days[i], block.get(), i});
    }
  }
  std::sort(rows.begin(), rows.end(), [](const RowRef& a, const RowRef& b) {
    return a.key != b.key ? a.key < b.key : a.day < b.day;
  });

  put_varint(out, rows.size());
  prev = 0;
  for (const RowRef& ref : rows) {
    put_varint(out, ref.key - prev);
    prev = ref.key;
  }
  for (const RowRef& ref : rows) put_svarint(out, ref.day);
  for (const RowRef& ref : rows) {
    put_varint(out, ref.block->offsets[ref.row + 1] -
                        ref.block->offsets[ref.row]);
  }
  for (const RowRef& ref : rows) {
    const auto begin = ref.block->offsets[ref.row];
    const auto end = ref.block->offsets[ref.row + 1];
    for (std::size_t i = begin; i < end; ++i) {
      put_f64(out, ref.block->samples[i]);
    }
  }
}

void ReservoirStore::restore(ByteReader& in) {
  if (pending_merge_.valid()) pending_merge_.get();  // discard stale merge

  const std::uint64_t format = in.varint();
  if (format != 1) {
    in.fail("unsupported reservoir payload format " + std::to_string(format));
  }
  const std::int64_t day64 = in.svarint();
  if (day64 < INT_MIN || day64 > INT_MAX) in.fail("memtable day out of range");

  std::unordered_map<std::uint64_t, MemRow> memtable;
  std::size_t memtable_samples = 0;
  const std::uint64_t mem_rows = in.varint();
  if (mem_rows > (std::uint64_t{1} << 32)) in.fail("memtable row count absurd");
  std::vector<std::uint64_t> mem_keys(static_cast<std::size_t>(mem_rows));
  std::uint64_t prev = 0;
  for (auto& key : mem_keys) {
    prev += in.varint();
    key = prev;
  }
  memtable.reserve(mem_keys.size());
  for (const std::uint64_t key : mem_keys) {
    memtable[key].seen = in.varint();
  }
  std::vector<std::uint64_t> mem_counts(mem_keys.size());
  for (auto& c : mem_counts) {
    c = in.varint();
    if (c > static_cast<std::uint64_t>(config_.reservoir_cap)) {
      in.fail("memtable sample count exceeds reservoir cap");
    }
  }
  for (std::size_t r = 0; r < mem_keys.size(); ++r) {
    auto& row = memtable[mem_keys[r]];
    row.sample.reserve(static_cast<std::size_t>(mem_counts[r]));
    for (std::uint64_t i = 0; i < mem_counts[r]; ++i) {
      row.sample.push_back(in.f64());
    }
    memtable_samples += row.sample.size();
  }

  const std::uint64_t frozen_rows = in.varint();
  if (frozen_rows > (std::uint64_t{1} << 40)) in.fail("frozen row count absurd");
  auto block = std::make_shared<ReservoirBlock>();
  block->keys.resize(static_cast<std::size_t>(frozen_rows));
  block->days.resize(static_cast<std::size_t>(frozen_rows));
  prev = 0;
  for (auto& key : block->keys) {
    prev += in.varint();
    key = prev;
  }
  block->min_day = INT_MAX;
  block->max_day = INT_MIN;
  for (auto& day : block->days) {
    const std::int64_t d = in.svarint();
    if (d < INT_MIN || d > INT_MAX) in.fail("row day out of range");
    day = static_cast<std::int32_t>(d);
    block->min_day = std::min(block->min_day, static_cast<int>(day));
    block->max_day = std::max(block->max_day, static_cast<int>(day));
  }
  if (frozen_rows == 0) {
    block->min_day = 0;
    block->max_day = 0;
  }
  std::vector<std::uint64_t> counts(static_cast<std::size_t>(frozen_rows));
  std::size_t total_samples = 0;
  for (auto& c : counts) {
    c = in.varint();
    if (c > static_cast<std::uint64_t>(config_.reservoir_cap)) {
      in.fail("row sample count exceeds reservoir cap");
    }
    total_samples += static_cast<std::size_t>(c);
  }
  block->offsets.reserve(counts.size() + 1);
  block->offsets.push_back(0);
  block->samples.reserve(total_samples);
  for (const std::uint64_t c : counts) {
    for (std::uint64_t i = 0; i < c; ++i) {
      block->samples.push_back(in.f64());
    }
    block->offsets.push_back(static_cast<std::uint32_t>(block->samples.size()));
  }
  in.expect_done();

  // All parsed cleanly — commit.
  memtable_ = std::move(memtable);
  memtable_samples_ = memtable_samples;
  memtable_day_ = static_cast<int>(day64);
  blocks_.clear();
  if (block->rows() > 0) blocks_.push_back(std::move(block));
  meta_.clear();
  for (const auto& b : blocks_) {
    for (const std::uint64_t key : b->keys) ++meta_[key];
  }
  for (const auto& [key, row] : memtable_) ++meta_[key];
  obs::set(memtable_bytes_g_,
           static_cast<double>(memtable_.size() *
                                   (sizeof(MemRow) + kHashNodeOverhead) +
                               memtable_samples_ * sizeof(double)));
  refresh_gauges();
}

}  // namespace blameit::store
