// Byte-level encoding primitives for the columnar state store and its
// snapshot files: fixed-width little-endian integers, LEB128 varints with
// zigzag for signed values, and raw IEEE-754 doubles (medians must restore
// bit-identically, so floats are never quantized).
//
// Reads go through ByteReader, which carries the absolute file offset and a
// context string so every decode failure — truncation, varint overrun,
// trailing garbage — names the exact byte it choked on. A corrupted snapshot
// must say "section \"learner\": checksum mismatch at offset 4242", not
// "bad file".
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>

namespace blameit::store {

/// Malformed, truncated, or checksum-failed snapshot data. The message is
/// fully formatted and names the offending byte offset.
class SnapshotError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

// ---- Append-style writers (buffers are std::string byte sinks) -----------

void put_u32(std::string& out, std::uint32_t v);
void put_u64(std::string& out, std::uint64_t v);
/// LEB128: 7 bits per byte, high bit = continuation.
void put_varint(std::string& out, std::uint64_t v);
/// Zigzag-mapped varint for signed values (small magnitudes stay small).
void put_svarint(std::string& out, std::int64_t v);
/// Raw IEEE-754 bits, little-endian (bit-exact round trip).
void put_f64(std::string& out, double v);
/// Varint length prefix + raw bytes.
void put_string(std::string& out, std::string_view s);

[[nodiscard]] constexpr std::uint64_t zigzag(std::int64_t v) noexcept {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}
[[nodiscard]] constexpr std::int64_t unzigzag(std::uint64_t v) noexcept {
  return static_cast<std::int64_t>((v >> 1) ^ (~(v & 1) + 1));
}

/// Sequential decoder over a byte range. `base_offset` is where this range
/// starts in the enclosing file, so failure messages report file-absolute
/// offsets; `context` prefixes every message (e.g. `snapshot x.snap: section
/// "learner"`).
class ByteReader {
 public:
  ByteReader(std::string_view data, std::size_t base_offset,
             std::string context)
      : data_(data), base_(base_offset), context_(std::move(context)) {}

  [[nodiscard]] std::uint8_t u8();
  [[nodiscard]] std::uint32_t u32();
  [[nodiscard]] std::uint64_t u64();
  [[nodiscard]] std::uint64_t varint();
  [[nodiscard]] std::int64_t svarint();
  [[nodiscard]] double f64();
  [[nodiscard]] std::string_view string();
  /// Raw byte run of exactly `n` bytes.
  [[nodiscard]] std::string_view bytes(std::size_t n);

  [[nodiscard]] std::size_t remaining() const noexcept {
    return data_.size() - pos_;
  }
  [[nodiscard]] bool done() const noexcept { return pos_ == data_.size(); }
  /// Absolute file offset of the next unread byte.
  [[nodiscard]] std::size_t offset() const noexcept { return base_ + pos_; }

  /// Throws unless every byte was consumed — trailing garbage in a section
  /// means the writer and reader disagree about the format.
  void expect_done() const;

  [[noreturn]] void fail(const std::string& what) const;

 private:
  void need(std::size_t n, const char* what) const;

  std::string_view data_;
  std::size_t pos_ = 0;
  std::size_t base_;
  std::string context_;
};

}  // namespace blameit::store
