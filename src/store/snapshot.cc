#include "store/snapshot.h"

#include <fstream>
#include <sstream>
#include <vector>

#include "util/digest.h"

namespace blameit::store {

namespace {

std::string quoted(std::string_view name) {
  std::string out = "\"";
  out.append(name);
  out += '"';
  return out;
}

std::string hex64(std::uint64_t v) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 0; i < 16; ++i) {
    out[static_cast<std::size_t>(i)] = kDigits[(v >> (60 - 4 * i)) & 0xF];
  }
  return out;
}

}  // namespace

std::string& SnapshotWriter::section(std::string name) {
  for (const auto& [existing, payload] : sections_) {
    if (existing == name) {
      throw SnapshotError{"snapshot writer: duplicate section " +
                          quoted(name)};
    }
  }
  sections_.emplace_back(std::move(name), std::string{});
  return sections_.back().second;
}

std::string SnapshotWriter::serialize() const {
  std::string out;
  out.append(kSnapshotMagic);
  put_u32(out, kSnapshotVersion);
  put_u32(out, static_cast<std::uint32_t>(sections_.size()));
  for (const auto& [name, payload] : sections_) {
    put_string(out, name);
    put_varint(out, payload.size());
    util::Digest64 digest;
    digest.update_bytes(payload.data(), payload.size());
    put_u64(out, digest.value());
    out.append(payload);
  }
  return out;
}

void SnapshotWriter::write_file(const std::string& path) const {
  const std::string bytes = serialize();
  std::ofstream out{path, std::ios::binary | std::ios::trunc};
  if (!out) {
    throw SnapshotError{"snapshot " + path + ": cannot open for writing"};
  }
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  out.flush();
  if (!out) {
    throw SnapshotError{"snapshot " + path + ": write failed"};
  }
}

SnapshotReader SnapshotReader::from_file(const std::string& path) {
  std::ifstream in{path, std::ios::binary};
  if (!in) {
    throw SnapshotError{"snapshot " + path + ": cannot open"};
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  if (in.bad()) {
    throw SnapshotError{"snapshot " + path + ": read failed"};
  }
  return from_bytes(std::move(buf).str(), "snapshot " + path);
}

SnapshotReader SnapshotReader::from_bytes(std::string bytes,
                                          std::string origin) {
  SnapshotReader reader;
  reader.origin_ = std::move(origin);
  reader.bytes_ = std::move(bytes);
  reader.parse();
  return reader;
}

void SnapshotReader::parse() {
  ByteReader header{bytes_, 0, origin_};
  const std::string_view magic = header.bytes(kSnapshotMagic.size());
  if (magic != kSnapshotMagic) {
    throw SnapshotError{origin_ + ": bad magic (not a snapshot file)"};
  }
  const std::uint32_t version = header.u32();
  if (version != kSnapshotVersion) {
    throw SnapshotError{origin_ + ": unsupported format version " +
                        std::to_string(version) + " (this build reads " +
                        std::to_string(kSnapshotVersion) + ")"};
  }
  const std::uint32_t count = header.u32();
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::string name{header.string()};
    const std::uint64_t length = header.varint();
    const std::uint64_t stored_digest = header.u64();
    if (length > header.remaining()) {
      throw SnapshotError{origin_ + ": section " + quoted(name) +
                          ": payload truncated at offset " +
                          std::to_string(header.offset()) + " (want " +
                          std::to_string(length) + " bytes, have " +
                          std::to_string(header.remaining()) + ")"};
    }
    const std::size_t payload_offset = header.offset();
    const std::string_view payload =
        header.bytes(static_cast<std::size_t>(length));
    util::Digest64 digest;
    digest.update_bytes(payload.data(), payload.size());
    if (digest.value() != stored_digest) {
      throw SnapshotError{origin_ + ": section " + quoted(name) +
                          ": checksum mismatch at offset " +
                          std::to_string(payload_offset) + " (stored " +
                          hex64(stored_digest) + ", computed " +
                          hex64(digest.value()) + ")"};
    }
    if (!sections_
             .emplace(name, std::make_pair(payload_offset,
                                           static_cast<std::size_t>(length)))
             .second) {
      throw SnapshotError{origin_ + ": duplicate section " + quoted(name)};
    }
  }
  header.expect_done();
}

bool SnapshotReader::has_section(std::string_view name) const {
  return sections_.find(name) != sections_.end();
}

ByteReader SnapshotReader::section(std::string_view name) const {
  const auto it = sections_.find(name);
  if (it == sections_.end()) {
    throw SnapshotError{origin_ + ": missing section " + quoted(name)};
  }
  const auto [offset, length] = it->second;
  return ByteReader{std::string_view{bytes_}.substr(offset, length), offset,
                    origin_ + ": section " + quoted(std::string{name})};
}

}  // namespace blameit::store
