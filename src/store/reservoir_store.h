// Memory-bounded columnar reservoir store: the LSM-flavored backing for
// per-⟨key, day⟩ Algorithm-R reservoirs (expected-RTT learner state).
//
//   observe() ──▶ memtable (hash map, CURRENT day only)
//                    │ day rollover: freeze into a sorted immutable block
//                    ▼
//   blocks_  = [ merged block (days a..b) | day block | day block | ... ]
//                    │ count > max_blocks: background merge into one run
//                    ▼
//   evict_stale() drops/rewrites whole blocks (rows older than the window)
//
// Each immutable block stores rows sorted by ⟨key, day⟩ in parallel columns
// (keys / days / sample-offsets / samples), so a key's window is two binary
// searches + a contiguous scan instead of a per-key heap allocation. Day
// ranges of successive blocks are disjoint and ascending, which keeps a
// key's rows in ascending-day order across the block list — the exact
// iteration order of the hash-map reference path, making the two backends
// bit-identical (same pooled-median input sequence, same Algorithm-R slot
// arithmetic).
//
// Stricter input contract than the hash path: observations must be GLOBALLY
// day-ordered (all keys share one mutable day), which is how the pipeline
// feeds it anyway. Mutations (observe/evict/restore) must be externally
// serialized with all other calls; reads may run concurrently with each
// other. The background merge thread only ever reads shared_ptr-held
// immutable blocks; its result is integrated on the owner thread at the
// next mutation point and discarded if eviction touched an input block.
#pragma once

#include <climits>
#include <cstdint>
#include <future>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "obs/registry.h"
#include "store/encoding.h"

namespace blameit::store {

/// Which state representation backs a component (learner / verdict store).
enum class StateBackend : std::uint8_t {
  kHashMap,   ///< per-key hash maps (the original reference path)
  kColumnar,  ///< sorted immutable blocks + memtable (memory-bounded)
};

[[nodiscard]] constexpr std::string_view to_string(StateBackend b) noexcept {
  return b == StateBackend::kColumnar ? "columnar" : "hashmap";
}

struct ReservoirStoreConfig {
  int reservoir_cap = 256;  ///< Algorithm-R per-day sample bound
  /// Merge all immutable blocks into one sorted run once more than this
  /// many accumulate (bounds read fan-out and per-block overhead).
  int max_blocks = 8;
  /// Run merges on a detached worker; the result lands at the next
  /// mutation. Off = merge inline at the trigger point. Either way the
  /// merged CONTENT — and every read — is identical; only timing differs.
  bool background_merge = true;
  /// Instrument name prefix (`<prefix>.memtable_bytes` etc.).
  std::string metric_prefix = "store";
  obs::Registry* registry = nullptr;
};

/// One immutable sorted run of ⟨key, day⟩ reservoir rows, columnar layout.
/// Row i's samples are samples[offsets[i] .. offsets[i+1]).
struct ReservoirBlock {
  std::vector<std::uint64_t> keys;    // sorted by (key, day)
  std::vector<std::int32_t> days;
  std::vector<std::uint32_t> offsets; // rows + 1 entries, prefix sums
  std::vector<double> samples;
  int min_day = 0;
  int max_day = 0;

  [[nodiscard]] std::size_t rows() const noexcept { return keys.size(); }
  [[nodiscard]] std::size_t bytes() const noexcept;
};

class ReservoirStore {
 public:
  explicit ReservoirStore(ReservoirStoreConfig config = {});
  ~ReservoirStore();

  ReservoirStore(const ReservoirStore&) = delete;
  ReservoirStore& operator=(const ReservoirStore&) = delete;

  /// Feeds one observation. Throws std::invalid_argument when `day`
  /// precedes the current memtable day (globally day-ordered contract).
  void observe(std::uint64_t key, int day, double rtt_ms);

  /// Drops every row with day < cutoff_day; returns how many rows (per-day
  /// reservoirs) were dropped. Incremental: touches only expired blocks.
  std::size_t evict_stale(int cutoff_day);

  [[nodiscard]] bool contains(std::uint64_t key) const;

  /// Appends every sample of `key` with day in [day - window_days, day - 1]
  /// to `pool`, days ascending, insertion order within a day — the pooled-
  /// median input sequence, identical to the hash path's.
  void collect_window(std::uint64_t key, int day, int window_days,
                      std::vector<double>& pool) const;

  /// Sample count collect_window would append.
  [[nodiscard]] std::size_t window_sample_count(std::uint64_t key, int day,
                                                int window_days) const;

  /// Keys with at least one live row.
  [[nodiscard]] std::size_t tracked_keys() const noexcept {
    return meta_.size();
  }

  // Introspection (tests, bench).
  [[nodiscard]] std::size_t block_count() const noexcept {
    return blocks_.size();
  }
  [[nodiscard]] std::size_t total_rows() const;
  [[nodiscard]] std::size_t memtable_rows() const noexcept {
    return memtable_.size();
  }
  [[nodiscard]] std::size_t approx_bytes() const;

  /// Blocks until any in-flight background merge has been integrated (or
  /// discarded). Mutation call — externally serialize like observe().
  void flush_merges();

  /// Serializes the full logical state into `out` in a block-structure-
  /// independent normal form (globally ⟨key, day⟩-sorted frozen rows +
  /// memtable), so equal logical state ⇒ equal bytes regardless of merge
  /// timing.
  void save(std::string& out) const;

  /// Replaces the store's state from a save() payload. Throws SnapshotError
  /// (with offsets) on malformed data.
  void restore(ByteReader& in);

 private:
  struct MemRow {
    std::uint64_t seen = 0;
    std::vector<double> sample;
  };
  struct MergeResult {
    std::vector<std::shared_ptr<const ReservoirBlock>> inputs;
    std::shared_ptr<const ReservoirBlock> merged;
    double elapsed_ms = 0.0;
  };

  void freeze_memtable();
  void maybe_start_merge();
  /// Integrates a finished merge if its inputs are still the block-list
  /// prefix; discards it otherwise (eviction rewrote an input).
  void integrate_merge(bool wait);
  void drop_block_rows(const ReservoirBlock& block, int cutoff_day,
                       std::size_t* dropped);
  void note_row_removed(std::uint64_t key);
  void refresh_gauges();

  static std::shared_ptr<const ReservoirBlock> merge_blocks(
      const std::vector<std::shared_ptr<const ReservoirBlock>>& inputs);

  ReservoirStoreConfig config_;
  std::unordered_map<std::uint64_t, MemRow> memtable_;
  int memtable_day_ = INT_MIN;
  std::size_t memtable_samples_ = 0;  // Σ sample.size(), for the bytes gauge
  std::vector<std::shared_ptr<const ReservoirBlock>> blocks_;
  std::unordered_map<std::uint64_t, std::uint32_t> meta_;  // key -> live rows
  std::future<MergeResult> pending_merge_;

  obs::Gauge* memtable_bytes_g_ = nullptr;
  obs::Gauge* block_count_g_ = nullptr;
  obs::Gauge* block_bytes_g_ = nullptr;
  obs::Counter* merges_c_ = nullptr;
  obs::Histogram* merge_ms_h_ = nullptr;
};

}  // namespace blameit::store
