// Impact accounting: incident runs (consecutive bad 5-minute buckets) and the
// client-time product (§2.4, §5.3) — affected users × degradation duration —
// that BlameIt ranks issues by, both for operator alerts and for allocating
// the traceroute budget.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "util/time.h"

namespace blameit::analysis {

/// A closed run of consecutive bad buckets for one aggregate key.
struct Incident {
  std::uint64_t key = 0;          ///< caller-defined aggregate identity
  util::TimeBucket start;
  int duration_buckets = 0;       ///< number of consecutive bad buckets
  double peak_users = 0.0;        ///< max affected users in any bucket
  double user_time_product = 0.0; ///< Σ users over buckets (client-time, §2.4)

  [[nodiscard]] int duration_minutes() const noexcept {
    return duration_buckets * util::kBucketMinutes;
  }
};

/// Tracks per-key badness runs as buckets are fed in order. Keys are opaque
/// 64-bit aggregates (e.g. packed ⟨location, BGP path⟩ or ⟨block, location,
/// device⟩ — whatever granularity the caller studies).
class IncidentTracker {
 public:
  /// Feeds the state of `key` in `bucket`: bad or good, with the number of
  /// affected users when bad. Buckets must be fed in non-decreasing order
  /// per key. A skipped bucket (no data) counts as good and closes runs.
  void observe(std::uint64_t key, util::TimeBucket bucket, bool bad,
               double users);

  /// Closes every open run at `bucket` (end of stream) and returns all
  /// incidents closed so far, start-ordered. The tracker is left empty.
  [[nodiscard]] std::vector<Incident> finish(util::TimeBucket end_bucket);

  /// Incidents closed so far without disturbing open runs.
  [[nodiscard]] const std::vector<Incident>& closed() const noexcept {
    return closed_;
  }

  /// Duration (in buckets, including the current one) of the open run for
  /// `key`; nullopt when the key is not currently in a bad run. Feeds the
  /// duration predictor's "lasted thus far" input (§5.3).
  [[nodiscard]] std::optional<int> open_run_length(std::uint64_t key) const;

 private:
  struct OpenRun {
    util::TimeBucket start;
    util::TimeBucket last;
    int duration = 0;
    double peak_users = 0.0;
    double user_time = 0.0;
  };

  void close_run(std::uint64_t key, OpenRun&& run);

  std::unordered_map<std::uint64_t, OpenRun> open_;
  std::vector<Incident> closed_;
};

/// One ranked aggregate for impact CDFs (Fig 4b): total impact and the count
/// of distinct problematic /24s, under the two orderings the paper compares.
struct RankedAggregate {
  std::uint64_t key = 0;
  double impact = 0.0;        ///< client-time product
  double prefix_count = 0.0;  ///< problematic IP-/24 count (baseline metric)
};

/// Fraction of cumulative impact covered by the top `fraction` of aggregates
/// under the given ordering ("by_impact" or by prefix_count when false).
/// Returns the coverage curve evaluated at each aggregate (ascending rank).
[[nodiscard]] std::vector<double> impact_coverage_curve(
    std::vector<RankedAggregate> aggregates, bool rank_by_impact);

}  // namespace blameit::analysis
