// Quartets — the paper's unit of analysis (§2.1): RTT measurements bundled by
// ⟨client IP-/24, cloud location, device class, 5-minute bucket⟩, classified
// good/bad against region- and device-specific thresholds, and annotated with
// the BGP middle segment used (resolved against the routing state, mirroring
// the IP-AS/BGP-table join of Fig 7).
#pragma once

#include <optional>
#include <unordered_map>
#include <vector>

#include "analysis/record.h"
#include "net/bgp.h"
#include "net/topology.h"
#include "util/stats.h"
#include "util/time.h"

namespace blameit::analysis {

struct QuartetKey {
  net::Slash24 block;
  net::CloudLocationId location;
  net::DeviceClass device{};
  util::TimeBucket bucket;

  bool operator==(const QuartetKey&) const = default;
};

struct QuartetKeyHash {
  std::size_t operator()(const QuartetKey& k) const noexcept {
    std::uint64_t h = k.block.block;
    h = util::hash_combine(h, k.location.value);
    h = util::hash_combine(h, static_cast<std::uint64_t>(k.device));
    h = util::hash_combine(h, static_cast<std::uint64_t>(k.bucket.index));
    return h;
  }
};

/// One finalized quartet, ready for Algorithm 1.
struct Quartet {
  QuartetKey key;
  int sample_count = 0;
  double mean_rtt_ms = 0.0;
  net::MiddleSegmentId middle;  ///< BGP path (middle ASes) in effect
  net::AsId client_as;
  net::Region region{};
  bool bad = false;  ///< mean RTT above the badness threshold

  /// Exact (bit-level for the mean) equality; the parallel-localizer
  /// determinism tests rely on this.
  bool operator==(const Quartet&) const = default;
};

/// Region- and device-specific badness thresholds (Azure's RTT targets).
class BadnessThresholds {
 public:
  /// Defaults derive from the built-in RegionProfiles.
  BadnessThresholds();

  [[nodiscard]] double threshold(net::Region region,
                                 net::DeviceClass device) const noexcept;

  /// Overrides one region/device threshold (tests, what-if analyses).
  void set(net::Region region, net::DeviceClass device, double ms);

 private:
  std::array<std::array<double, 2>, 7> thresholds_{};
};

struct QuartetBuilderConfig {
  /// Minimum RTT samples for a quartet to be classified (§2.1 uses 10).
  int min_samples = 10;
};

/// Accumulates RttRecords and finalizes per-bucket quartets.
class QuartetBuilder {
 public:
  QuartetBuilder(const net::Topology* topology, BadnessThresholds thresholds,
                 QuartetBuilderConfig config = {});

  /// Adds one record. Records for unknown client blocks are counted and
  /// dropped (production sees traffic from unannounced space too).
  void add(const RttRecord& record);

  /// Adds a pre-aggregated quartet (the fast simulation path, which skips
  /// per-record accumulation). The mean/count are taken as-is.
  void add_aggregate(const QuartetKey& key, int sample_count,
                     double mean_rtt_ms);

  /// Finalizes and removes all quartets of `bucket`. Quartets with fewer
  /// than min_samples are dropped (classification needs confidence).
  [[nodiscard]] std::vector<Quartet> take_bucket(util::TimeBucket bucket);

  [[nodiscard]] std::size_t pending() const noexcept { return acc_.size(); }
  [[nodiscard]] std::uint64_t dropped_unknown_blocks() const noexcept {
    return dropped_unknown_;
  }
  /// Quartets discarded at take_bucket time for having fewer than
  /// min_samples records (and the records they carried).
  [[nodiscard]] std::uint64_t dropped_min_samples() const noexcept {
    return dropped_min_samples_;
  }
  [[nodiscard]] std::uint64_t dropped_min_samples_records() const noexcept {
    return dropped_min_samples_records_;
  }
  [[nodiscard]] const BadnessThresholds& thresholds() const noexcept {
    return thresholds_;
  }

 private:
  struct Accumulator {
    int count = 0;
    double sum = 0.0;
  };

  const net::Topology* topology_;
  BadnessThresholds thresholds_;
  QuartetBuilderConfig config_;
  std::unordered_map<QuartetKey, Accumulator, QuartetKeyHash> acc_;
  std::uint64_t dropped_unknown_ = 0;
  std::uint64_t dropped_min_samples_ = 0;
  std::uint64_t dropped_min_samples_records_ = 0;
};

/// Splits a quartet's samples in two halves and checks they are drawn from
/// the same distribution (the §2.1 KS self-check). Exposed as a free
/// function over raw samples since finalized quartets only keep the mean.
[[nodiscard]] bool quartet_samples_homogeneous(
    std::span<const double> samples, double alpha = 0.05);

}  // namespace blameit::analysis
