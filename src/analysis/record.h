// Raw telemetry records and the storage-bucket emulation.
//
// Azure's pipeline (§6.1) writes each RTT tuple into one of a few hundred
// storage buckets created fresh each hour, losing temporal ordering within
// the hour — so a 15-minute analysis run has to scan every bucket filled so far
// that hour. HourlyBucketStore reproduces that quirk; a test asserts the
// quartets produced through it are identical to a direct feed.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "net/cloud.h"
#include "net/device.h"
#include "net/ipv4.h"
#include "util/rng.h"
#include "util/time.h"

namespace blameit::analysis {

/// One TCP-handshake RTT measurement as recorded at a cloud location.
struct RttRecord {
  util::MinuteTime time;
  net::CloudLocationId location;
  net::Ipv4Addr client_ip;
  net::DeviceClass device{};
  double rtt_ms = 0.0;
};

/// Emulates the hourly randomized storage buckets of the production pipeline
/// (§6.1). Records land in a deterministic pseudo-random bucket; reading a
/// time window scans all buckets of the hours it touches and filters.
class HourlyBucketStore {
 public:
  explicit HourlyBucketStore(int buckets_per_hour = 256,
                             std::uint64_t seed = 1);

  void add(const RttRecord& record);

  /// All records with time in [from, to). Order is NOT chronological within
  /// an hour (that is the point of the emulation).
  [[nodiscard]] std::vector<RttRecord> read_window(util::MinuteTime from,
                                                   util::MinuteTime to) const;

  /// Number of buckets scanned by the last read_window call — surfaces the
  /// §6.1 inefficiency ("has to read all the buckets filled thus far").
  [[nodiscard]] std::size_t last_scan_bucket_count() const noexcept {
    return last_scan_buckets_;
  }

  [[nodiscard]] std::size_t size() const noexcept { return total_; }

  /// Drops all hours strictly before `hour_index` (retention trimming).
  void evict_before_hour(std::int64_t hour_index);

 private:
  int buckets_per_hour_;
  std::uint64_t seed_;
  // hour index -> bucket -> records
  std::unordered_map<std::int64_t, std::vector<std::vector<RttRecord>>>
      hours_;
  std::size_t total_ = 0;
  mutable std::size_t last_scan_buckets_ = 0;
};

}  // namespace blameit::analysis
