#include "analysis/impact.h"

#include <algorithm>
#include <stdexcept>

namespace blameit::analysis {

void IncidentTracker::observe(std::uint64_t key, util::TimeBucket bucket,
                              bool bad, double users) {
  const auto it = open_.find(key);
  if (it != open_.end()) {
    OpenRun& run = it->second;
    if (bucket <= run.last) {
      throw std::invalid_argument{
          "IncidentTracker: buckets must advance per key"};
    }
    const bool consecutive = bucket == run.last.next();
    if (bad && consecutive) {
      run.last = bucket;
      ++run.duration;
      run.peak_users = std::max(run.peak_users, users);
      run.user_time += users;
      return;
    }
    // Run ends: either the key went good, or a gap broke continuity.
    auto finished = std::move(it->second);
    open_.erase(it);
    close_run(key, std::move(finished));
    // A bad observation after a gap starts a fresh run below.
  }
  if (bad) {
    open_.emplace(key, OpenRun{.start = bucket,
                               .last = bucket,
                               .duration = 1,
                               .peak_users = users,
                               .user_time = users});
  }
}

void IncidentTracker::close_run(std::uint64_t key, OpenRun&& run) {
  closed_.push_back(Incident{.key = key,
                             .start = run.start,
                             .duration_buckets = run.duration,
                             .peak_users = run.peak_users,
                             .user_time_product = run.user_time});
}

std::vector<Incident> IncidentTracker::finish(util::TimeBucket end_bucket) {
  for (auto& [key, run] : open_) {
    if (run.last >= end_bucket) {
      // Truncate book-keeping: runs may not extend past the declared end.
      run.last = end_bucket;
    }
    close_run(key, std::move(run));
  }
  open_.clear();
  std::sort(closed_.begin(), closed_.end(),
            [](const Incident& a, const Incident& b) {
              if (a.start != b.start) return a.start < b.start;
              return a.key < b.key;
            });
  return std::move(closed_);
}

std::optional<int> IncidentTracker::open_run_length(std::uint64_t key) const {
  const auto it = open_.find(key);
  if (it == open_.end()) return std::nullopt;
  return it->second.duration;
}

std::vector<double> impact_coverage_curve(
    std::vector<RankedAggregate> aggregates, bool rank_by_impact) {
  std::vector<double> curve;
  if (aggregates.empty()) return curve;
  std::sort(aggregates.begin(), aggregates.end(),
            [rank_by_impact](const RankedAggregate& a,
                             const RankedAggregate& b) {
              const double ka = rank_by_impact ? a.impact : a.prefix_count;
              const double kb = rank_by_impact ? b.impact : b.prefix_count;
              if (ka != kb) return ka > kb;  // descending importance
              return a.key < b.key;
            });
  double total = 0.0;
  for (const auto& agg : aggregates) total += agg.impact;
  if (total <= 0.0) return std::vector<double>(aggregates.size(), 0.0);
  curve.reserve(aggregates.size());
  double acc = 0.0;
  for (const auto& agg : aggregates) {
    acc += agg.impact;
    curve.push_back(acc / total);
  }
  return curve;
}

}  // namespace blameit::analysis
