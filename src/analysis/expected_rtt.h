// Rolling expected-RTT learner (§4.3): the median of the past 14 days of RTT
// observations, learned separately per cloud location and per ⟨cloud
// location, BGP path⟩, each split by device class. Algorithm 1 compares
// against these learned values — not the badness thresholds — when computing
// the bad fraction of a cloud node or middle segment, which is what lets it
// catch shifts that stay below the region target (the paper's 40 ms→55 ms
// worked example).
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <unordered_map>
#include <vector>

#include "net/bgp.h"
#include "net/cloud.h"
#include "net/device.h"
#include "util/rng.h"
#include "util/time.h"

namespace blameit::analysis {

/// Opaque learner key; build with cloud_key / middle_key.
struct ExpectedRttKey {
  std::uint64_t packed = 0;
  bool operator==(const ExpectedRttKey&) const = default;
};

[[nodiscard]] ExpectedRttKey cloud_key(net::CloudLocationId location,
                                       net::DeviceClass device) noexcept;
[[nodiscard]] ExpectedRttKey middle_key(net::CloudLocationId location,
                                        net::MiddleSegmentId middle,
                                        net::DeviceClass device) noexcept;

struct ExpectedRttConfig {
  int window_days = 14;          ///< paper uses the past 14 days
  int reservoir_per_day = 256;   ///< bounded per-day sample memory
};

/// Learns expected RTTs as the median over a sliding multi-day window of
/// per-day reservoir samples. Deterministic given the feed order.
class ExpectedRttLearner {
 public:
  explicit ExpectedRttLearner(ExpectedRttConfig config = {});

  /// Feeds one observation (a quartet's mean RTT) for `key` on `day`.
  void observe(ExpectedRttKey key, int day, double rtt_ms);

  /// Median over days [day - window, day - 1]; nullopt when no history.
  /// The current day is excluded so an ongoing incident cannot teach the
  /// learner its own inflation.
  [[nodiscard]] std::optional<double> expected(ExpectedRttKey key,
                                               int day) const;

  /// Number of historical observations backing expected(key, day).
  [[nodiscard]] std::size_t history_size(ExpectedRttKey key, int day) const;

  /// Drops per-day reservoirs older than `day - window` (memory bound).
  void evict_stale(int day);

 private:
  struct DayReservoir {
    int day = -1;
    std::uint64_t seen = 0;
    std::vector<double> sample;
  };
  struct KeyHistory {
    std::deque<DayReservoir> days;  // ascending by day
  };
  struct KeyHash {
    std::size_t operator()(const ExpectedRttKey& k) const noexcept {
      return std::hash<std::uint64_t>{}(k.packed);
    }
  };

  ExpectedRttConfig config_;
  std::unordered_map<ExpectedRttKey, KeyHistory, KeyHash> histories_;
};

}  // namespace blameit::analysis
