// Rolling expected-RTT learner (§4.3): the median of the past 14 days of RTT
// observations, learned separately per cloud location and per ⟨cloud
// location, BGP path⟩, each split by device class. Algorithm 1 compares
// against these learned values — not the badness thresholds — when computing
// the bad fraction of a cloud node or middle segment, which is what lets it
// catch shifts that stay below the region target (the paper's 40 ms→55 ms
// worked example).
//
// Two interchangeable state backends (ExpectedRttConfig::backend):
//  - kHashMap: per-key deques of day reservoirs, the original reference path.
//  - kColumnar: a store::ReservoirStore — sorted immutable blocks + memtable,
//    memory-bounded and snapshot-friendly. Requires globally day-ordered
//    observations (which is how the pipeline feeds the learner).
// Both produce bit-identical expected() values on the same feed; the hash
// path stays as the reference the columnar path is tested against.
//
// The pooled median is memoized per ⟨key, query day⟩: the 14-day window only
// changes at day rollover, yet expected() is consulted once per group per
// 5-minute bucket, so without the cache the same pool was rebuilt and
// re-medianed hundreds of times a day. The cache is invalidated by observe()
// when an observation could fall inside a cached window (only possible when
// the cached query day lies ahead of the observation day) and by
// evict_stale() whenever it drops reservoirs.
//
// Threading contract: observe(), evict_stale(), save_state(), and
// restore_state() must be externally serialized with all other calls;
// expected() and history_size() may run concurrently with each other (the
// parallel passive localizer does this).
#pragma once

#include <climits>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "net/bgp.h"
#include "net/cloud.h"
#include "net/device.h"
#include "obs/registry.h"
#include "store/reservoir_store.h"
#include "store/snapshot.h"
#include "util/rng.h"
#include "util/time.h"

namespace blameit::analysis {

/// Opaque learner key; build with cloud_key / middle_key.
struct ExpectedRttKey {
  std::uint64_t packed = 0;
  bool operator==(const ExpectedRttKey&) const = default;
};

[[nodiscard]] ExpectedRttKey cloud_key(net::CloudLocationId location,
                                       net::DeviceClass device) noexcept;
[[nodiscard]] ExpectedRttKey middle_key(net::CloudLocationId location,
                                        net::MiddleSegmentId middle,
                                        net::DeviceClass device) noexcept;

/// Where an expected-RTT value came from, carried through Algorithm 1 so a
/// verdict can say how churn-degraded its baseline was.
enum class BaselineProvenance : std::uint8_t {
  kNone,         ///< no usable expectation at all
  kFresh,        ///< pooled median of the key's own window history
  kTransferred,  ///< inherited from another key after a churn event
};

/// An expectation with its provenance (expected_with_provenance()).
struct GradedExpectation {
  std::optional<double> value;
  BaselineProvenance provenance = BaselineProvenance::kNone;
};

struct ExpectedRttConfig {
  int window_days = 14;          ///< paper uses the past 14 days
  int reservoir_per_day = 256;   ///< bounded per-day sample memory
  /// Multiplier applied to a transferred baseline when it is served — the
  /// freshness discount: the new path is ASSUMED a bit worse than the old
  /// path's median until real history accumulates, so borderline groups
  /// don't flap to bad on inherited optimism. Compounds across chained
  /// transfers.
  double transfer_discount = 1.1;
  /// Transfers older than this many days stop being served (and are evicted)
  /// — by then the window either has real history or the path is gone.
  int transfer_max_age_days = 3;
  /// Serve repeated expected() queries from the per-⟨key, day⟩ median cache.
  /// Off = recompute per call (the pre-cache behavior; kept as an A/B knob
  /// for the perf benches).
  bool memoize_medians = true;
  /// Which state representation holds the reservoirs (see file comment).
  store::StateBackend backend = store::StateBackend::kHashMap;
  /// Optional metrics sink (memoization hit/miss, evictions, tracked keys;
  /// the columnar backend additionally exports store.learner.* block/
  /// memtable/merge metrics); null = no instrumentation, zero overhead.
  obs::Registry* registry = nullptr;
};

/// Learns expected RTTs as the median over a sliding multi-day window of
/// per-day reservoir samples. Deterministic given the feed order; the memo
/// cache never changes results, only their cost.
class ExpectedRttLearner {
 public:
  explicit ExpectedRttLearner(ExpectedRttConfig config = {});

  ExpectedRttLearner(const ExpectedRttLearner&) = delete;
  ExpectedRttLearner& operator=(const ExpectedRttLearner&) = delete;

  /// Feeds one observation (a quartet's mean RTT) for `key` on `day`.
  void observe(ExpectedRttKey key, int day, double rtt_ms);

  /// Median over days [day - window, day - 1]; nullopt when no history.
  /// The current day is excluded so an ongoing incident cannot teach the
  /// learner its own inflation. O(1) when the ⟨key, day⟩ cache is warm.
  [[nodiscard]] std::optional<double> expected(ExpectedRttKey key,
                                               int day) const;

  /// Number of historical observations backing expected(key, day).
  [[nodiscard]] std::size_t history_size(ExpectedRttKey key, int day) const;

  /// expected() plus provenance: the key's own window median when it has
  /// one (kFresh), else a live transferred baseline with the freshness
  /// discount applied (kTransferred), else {nullopt, kNone}. Thread-safe
  /// like expected() — the transfer table only changes under the external
  /// serialization contract.
  [[nodiscard]] GradedExpectation expected_with_provenance(ExpectedRttKey key,
                                                           int day) const;

  /// Seeds `to_key`'s expectation from `from_key`, keyed on a churn event
  /// observed on `day`. The source value is captured EAGERLY — the source's
  /// fresh median at transfer time (or its own live transferred value, with
  /// one more discount compounded) — so the transfer survives the source
  /// being evicted later. Recorded even when the target has real window
  /// history (fresh history always wins at serve time; the entry then acts
  /// purely as the recently_churned() mark). No-ops (returns false) when
  /// the source has nothing usable or the target holds a strictly fresher
  /// transfer.
  bool transfer_baseline(ExpectedRttKey from_key, ExpectedRttKey to_key,
                         int day);

  /// True while `key` holds a live (non-expired, non-future) transfer entry
  /// — i.e. a churn event re-routed traffic onto this key within the last
  /// transfer_max_age_days. The passive phase uses this as corroboration
  /// that a sub-threshold group shift is path-shaped (§13 soft badness).
  [[nodiscard]] bool recently_churned(ExpectedRttKey key, int day) const;

  /// Live transfer entries (observability + tests).
  [[nodiscard]] std::size_t transfer_count() const noexcept {
    return transfers_.size();
  }

  /// Drops per-day reservoirs older than `day - window` (memory bound) and
  /// erases keys whose history becomes empty — without the erase, churned
  /// keys (BGP paths that stop being used) would grow the map forever.
  /// Incremental: only day buckets past the cutoff are visited, so the cost
  /// tracks what expires, not the total tracked-key count.
  void evict_stale(int day);

  /// Keys with at least one live reservoir (memory-regression observability).
  [[nodiscard]] std::size_t tracked_keys() const noexcept {
    return store_ ? store_->tracked_keys() : histories_.size();
  }

  [[nodiscard]] store::StateBackend backend() const noexcept {
    return config_.backend;
  }

  /// Writes the full reservoir state as snapshot section "learner". Memo
  /// caches are not persisted (recomputation yields identical values).
  void save_state(store::SnapshotWriter& writer) const;
  /// Replaces the reservoir state from a snapshot. The snapshot must have
  /// been written by the same backend (the section records which).
  void restore_state(const store::SnapshotReader& reader);

 private:
  struct DayReservoir {
    int day = -1;
    std::uint64_t seen = 0;
    std::vector<double> sample;
  };
  struct KeyHistory {
    std::deque<DayReservoir> days;  // ascending by day
    // Memoized expected() result for query day cache_day (guarded by
    // cache_mutex_; mutable because filling the cache is logically const).
    mutable int cache_day = INT_MIN;
    mutable std::optional<double> cache_value;
  };
  struct KeyHash {
    std::size_t operator()(const ExpectedRttKey& k) const noexcept {
      return std::hash<std::uint64_t>{}(k.packed);
    }
  };
  struct ColumnarMemo {
    int cache_day = INT_MIN;
    std::optional<double> cache_value;
  };
  /// One inherited baseline: the (undiscounted) value captured from the
  /// source at transfer time. Held OUTSIDE the reservoir backends: the
  /// columnar store requires globally day-ordered rows, which forbids
  /// seeding past days, and a side table keeps both backends bit-identical.
  struct TransferEntry {
    int day = -1;                ///< day the transfer was recorded
    double value = 0.0;          ///< source median at transfer time
    std::uint64_t from_key = 0;  ///< provenance (diagnostics + snapshots)
  };

  /// Pools the window's reservoirs into a reused scratch buffer and takes
  /// the median (nth_element, no per-call allocation).
  [[nodiscard]] std::optional<double> pooled_median(const KeyHistory& history,
                                                    int day) const;
  [[nodiscard]] std::optional<double> columnar_median(std::uint64_t key,
                                                      int day) const;

  ExpectedRttConfig config_;
  std::unordered_map<ExpectedRttKey, KeyHistory, KeyHash> histories_;
  /// Day -> keys that created a reservoir on that day; lets evict_stale()
  /// visit only expired reservoirs instead of scanning every tracked key.
  std::map<int, std::vector<ExpectedRttKey>> keys_by_day_;
  std::unique_ptr<store::ReservoirStore> store_;  // columnar backend only
  /// Key → inherited baseline. std::map: deterministic iteration order makes
  /// the snapshot bytes identical on both backends.
  std::map<std::uint64_t, TransferEntry> transfers_;
  mutable std::unordered_map<std::uint64_t, ColumnarMemo> columnar_memo_;
  mutable std::mutex cache_mutex_;

  // Instruments (null without a registry).
  obs::Counter* memo_hits_c_ = nullptr;
  obs::Counter* memo_misses_c_ = nullptr;
  obs::Counter* evictions_c_ = nullptr;
  obs::Gauge* tracked_keys_g_ = nullptr;
};

}  // namespace blameit::analysis
