#include "analysis/record.h"

#include <stdexcept>

namespace blameit::analysis {

HourlyBucketStore::HourlyBucketStore(int buckets_per_hour, std::uint64_t seed)
    : buckets_per_hour_(buckets_per_hour), seed_(seed) {
  if (buckets_per_hour_ <= 0) {
    throw std::invalid_argument{"HourlyBucketStore: need buckets > 0"};
  }
}

void HourlyBucketStore::add(const RttRecord& record) {
  const std::int64_t hour = record.time.minutes / util::kMinutesPerHour;
  auto& buckets = hours_[hour];
  if (buckets.empty()) buckets.resize(static_cast<std::size_t>(buckets_per_hour_));
  // Deterministic pseudo-random bucket choice (production picks randomly;
  // determinism keeps replays identical without changing the semantics).
  const auto bucket = util::hash_combine(
                          seed_, util::hash_combine(
                                     static_cast<std::uint64_t>(record.time.minutes),
                                     record.client_ip.value)) %
                      static_cast<std::uint64_t>(buckets_per_hour_);
  buckets[static_cast<std::size_t>(bucket)].push_back(record);
  ++total_;
}

std::vector<RttRecord> HourlyBucketStore::read_window(
    util::MinuteTime from, util::MinuteTime to) const {
  std::vector<RttRecord> out;
  last_scan_buckets_ = 0;
  if (to <= from) return out;
  const std::int64_t first_hour = from.minutes / util::kMinutesPerHour;
  const std::int64_t last_hour = (to.minutes - 1) / util::kMinutesPerHour;
  for (std::int64_t hour = first_hour; hour <= last_hour; ++hour) {
    const auto it = hours_.find(hour);
    if (it == hours_.end()) continue;
    for (const auto& bucket : it->second) {
      ++last_scan_buckets_;
      for (const auto& record : bucket) {
        if (record.time >= from && record.time < to) out.push_back(record);
      }
    }
  }
  return out;
}

void HourlyBucketStore::evict_before_hour(std::int64_t hour_index) {
  for (auto it = hours_.begin(); it != hours_.end();) {
    if (it->first < hour_index) {
      for (const auto& bucket : it->second) total_ -= bucket.size();
      it = hours_.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace blameit::analysis
