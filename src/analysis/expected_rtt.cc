#include "analysis/expected_rtt.h"

#include <algorithm>
#include <stdexcept>

#include "util/stats.h"

namespace blameit::analysis {

ExpectedRttKey cloud_key(net::CloudLocationId location,
                         net::DeviceClass device) noexcept {
  return ExpectedRttKey{(std::uint64_t{1} << 62) |
                        (std::uint64_t{location.value} << 8) |
                        static_cast<std::uint64_t>(device)};
}

ExpectedRttKey middle_key(net::CloudLocationId location,
                          net::MiddleSegmentId middle,
                          net::DeviceClass device) noexcept {
  return ExpectedRttKey{(std::uint64_t{2} << 62) |
                        (std::uint64_t{location.value} << 40) |
                        (std::uint64_t{middle.value} << 8) |
                        static_cast<std::uint64_t>(device)};
}

ExpectedRttLearner::ExpectedRttLearner(ExpectedRttConfig config)
    : config_(config) {
  if (config_.window_days < 1 || config_.reservoir_per_day < 1) {
    throw std::invalid_argument{"ExpectedRttConfig: invalid window/reservoir"};
  }
  memo_hits_c_ = obs::counter(config_.registry, "learner.memo_hits");
  memo_misses_c_ = obs::counter(config_.registry, "learner.memo_misses");
  evictions_c_ = obs::counter(config_.registry, "learner.reservoir_evictions");
  tracked_keys_g_ = obs::gauge(config_.registry, "learner.tracked_keys");
}

void ExpectedRttLearner::observe(ExpectedRttKey key, int day, double rtt_ms) {
  if (day < 0 || rtt_ms < 0.0) {
    throw std::invalid_argument{"ExpectedRttLearner: negative day or RTT"};
  }
  auto& history = histories_[key];
  obs::set(tracked_keys_g_, static_cast<double>(histories_.size()));
  if (history.days.empty() || history.days.back().day < day) {
    history.days.push_back(DayReservoir{.day = day, .seen = 0, .sample = {}});
  } else if (history.days.back().day > day) {
    throw std::invalid_argument{
        "ExpectedRttLearner: observations must arrive day-ordered"};
  }
  // A cached median for query day q pools days [q - window, q - 1]; this
  // observation lands on `day`, inside that window only when q > day. The
  // steady state — cache and observations both on the current day — keeps
  // the cache warm, which is the whole point.
  if (history.cache_day > day) history.cache_day = INT_MIN;
  auto& reservoir = history.days.back();
  ++reservoir.seen;
  const auto cap = static_cast<std::size_t>(config_.reservoir_per_day);
  if (reservoir.sample.size() < cap) {
    reservoir.sample.push_back(rtt_ms);
  } else {
    // Algorithm R: keep a uniform sample of the day's stream, deterministic
    // via a counter-seeded hash rather than shared RNG state.
    const std::uint64_t slot =
        util::hash_combine(key.packed,
                           util::hash_combine(
                               static_cast<std::uint64_t>(day),
                               reservoir.seen)) %
        reservoir.seen;
    if (slot < cap) reservoir.sample[static_cast<std::size_t>(slot)] = rtt_ms;
  }
}

std::optional<double> ExpectedRttLearner::pooled_median(
    const KeyHistory& history, int day) const {
  static thread_local std::vector<double> pool;
  pool.clear();
  for (const auto& reservoir : history.days) {
    if (reservoir.day >= day || reservoir.day < day - config_.window_days) {
      continue;
    }
    pool.insert(pool.end(), reservoir.sample.begin(), reservoir.sample.end());
  }
  if (pool.empty()) return std::nullopt;
  return util::median_inplace(pool);
}

std::optional<double> ExpectedRttLearner::expected(ExpectedRttKey key,
                                                   int day) const {
  const auto it = histories_.find(key);
  if (it == histories_.end()) return std::nullopt;
  const KeyHistory& history = it->second;
  if (!config_.memoize_medians) return pooled_median(history, day);
  std::lock_guard lock{cache_mutex_};
  if (history.cache_day != day) {
    obs::add(memo_misses_c_);
    history.cache_value = pooled_median(history, day);
    history.cache_day = day;
  } else {
    obs::add(memo_hits_c_);
  }
  return history.cache_value;
}

std::size_t ExpectedRttLearner::history_size(ExpectedRttKey key,
                                             int day) const {
  const auto it = histories_.find(key);
  if (it == histories_.end()) return 0;
  std::size_t n = 0;
  for (const auto& reservoir : it->second.days) {
    if (reservoir.day >= day || reservoir.day < day - config_.window_days) {
      continue;
    }
    n += reservoir.sample.size();
  }
  return n;
}

void ExpectedRttLearner::evict_stale(int day) {
  for (auto it = histories_.begin(); it != histories_.end();) {
    auto& history = it->second;
    bool popped = false;
    while (!history.days.empty() &&
           history.days.front().day < day - config_.window_days) {
      history.days.pop_front();
      popped = true;
      obs::add(evictions_c_);
    }
    // A popped reservoir may sit inside the window of a cached (older) query
    // day, so any cached value is suspect now.
    if (popped) history.cache_day = INT_MIN;
    if (history.days.empty()) {
      it = histories_.erase(it);  // keys that churned away must not leak
    } else {
      ++it;
    }
  }
  obs::set(tracked_keys_g_, static_cast<double>(histories_.size()));
}

}  // namespace blameit::analysis
