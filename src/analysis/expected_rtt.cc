#include "analysis/expected_rtt.h"

#include <algorithm>
#include <stdexcept>

#include "util/stats.h"

namespace blameit::analysis {

ExpectedRttKey cloud_key(net::CloudLocationId location,
                         net::DeviceClass device) noexcept {
  return ExpectedRttKey{(std::uint64_t{1} << 62) |
                        (std::uint64_t{location.value} << 8) |
                        static_cast<std::uint64_t>(device)};
}

ExpectedRttKey middle_key(net::CloudLocationId location,
                          net::MiddleSegmentId middle,
                          net::DeviceClass device) noexcept {
  return ExpectedRttKey{(std::uint64_t{2} << 62) |
                        (std::uint64_t{location.value} << 40) |
                        (std::uint64_t{middle.value} << 8) |
                        static_cast<std::uint64_t>(device)};
}

ExpectedRttLearner::ExpectedRttLearner(ExpectedRttConfig config)
    : config_(config) {
  if (config_.window_days < 1 || config_.reservoir_per_day < 1) {
    throw std::invalid_argument{"ExpectedRttConfig: invalid window/reservoir"};
  }
  if (config_.transfer_discount < 1.0 || config_.transfer_max_age_days < 1) {
    throw std::invalid_argument{
        "ExpectedRttConfig: transfer discount must be >= 1 and max age >= 1"};
  }
  if (config_.backend == store::StateBackend::kColumnar) {
    store::ReservoirStoreConfig store_config;
    store_config.reservoir_cap = config_.reservoir_per_day;
    store_config.metric_prefix = "store.learner";
    store_config.registry = config_.registry;
    store_ = std::make_unique<store::ReservoirStore>(std::move(store_config));
  }
  memo_hits_c_ = obs::counter(config_.registry, "learner.memo_hits");
  memo_misses_c_ = obs::counter(config_.registry, "learner.memo_misses");
  evictions_c_ = obs::counter(config_.registry, "learner.reservoir_evictions");
  tracked_keys_g_ = obs::gauge(config_.registry, "learner.tracked_keys");
}

void ExpectedRttLearner::observe(ExpectedRttKey key, int day, double rtt_ms) {
  if (day < 0 || rtt_ms < 0.0) {
    throw std::invalid_argument{"ExpectedRttLearner: negative day or RTT"};
  }
  if (store_) {
    // Same cache rule as the hash path: an observation can only fall inside
    // a cached window when the cached query day lies ahead of it.
    if (!columnar_memo_.empty()) {
      const auto it = columnar_memo_.find(key.packed);
      if (it != columnar_memo_.end() && it->second.cache_day > day) {
        columnar_memo_.erase(it);
      }
    }
    store_->observe(key.packed, day, rtt_ms);
    obs::set(tracked_keys_g_, static_cast<double>(store_->tracked_keys()));
    return;
  }
  auto& history = histories_[key];
  obs::set(tracked_keys_g_, static_cast<double>(histories_.size()));
  if (history.days.empty() || history.days.back().day < day) {
    history.days.push_back(DayReservoir{.day = day, .seen = 0, .sample = {}});
    keys_by_day_[day].push_back(key);  // one eviction-list entry per reservoir
  } else if (history.days.back().day > day) {
    throw std::invalid_argument{
        "ExpectedRttLearner: observations must arrive day-ordered"};
  }
  // A cached median for query day q pools days [q - window, q - 1]; this
  // observation lands on `day`, inside that window only when q > day. The
  // steady state — cache and observations both on the current day — keeps
  // the cache warm, which is the whole point.
  if (history.cache_day > day) history.cache_day = INT_MIN;
  auto& reservoir = history.days.back();
  ++reservoir.seen;
  const auto cap = static_cast<std::size_t>(config_.reservoir_per_day);
  if (reservoir.sample.size() < cap) {
    reservoir.sample.push_back(rtt_ms);
  } else {
    // Algorithm R: keep a uniform sample of the day's stream, deterministic
    // via a counter-seeded hash rather than shared RNG state.
    const std::uint64_t slot =
        util::hash_combine(key.packed,
                           util::hash_combine(
                               static_cast<std::uint64_t>(day),
                               reservoir.seen)) %
        reservoir.seen;
    if (slot < cap) reservoir.sample[static_cast<std::size_t>(slot)] = rtt_ms;
  }
}

std::optional<double> ExpectedRttLearner::pooled_median(
    const KeyHistory& history, int day) const {
  static thread_local std::vector<double> pool;
  pool.clear();
  for (const auto& reservoir : history.days) {
    if (reservoir.day >= day || reservoir.day < day - config_.window_days) {
      continue;
    }
    pool.insert(pool.end(), reservoir.sample.begin(), reservoir.sample.end());
  }
  if (pool.empty()) return std::nullopt;
  return util::median_inplace(pool);
}

std::optional<double> ExpectedRttLearner::columnar_median(std::uint64_t key,
                                                          int day) const {
  static thread_local std::vector<double> pool;
  pool.clear();
  store_->collect_window(key, day, config_.window_days, pool);
  if (pool.empty()) return std::nullopt;
  return util::median_inplace(pool);
}

std::optional<double> ExpectedRttLearner::expected(ExpectedRttKey key,
                                                   int day) const {
  if (store_) {
    if (!store_->contains(key.packed)) return std::nullopt;
    if (!config_.memoize_medians) return columnar_median(key.packed, day);
    std::lock_guard lock{cache_mutex_};
    auto& memo = columnar_memo_[key.packed];
    if (memo.cache_day != day) {
      obs::add(memo_misses_c_);
      memo.cache_value = columnar_median(key.packed, day);
      memo.cache_day = day;
    } else {
      obs::add(memo_hits_c_);
    }
    return memo.cache_value;
  }
  const auto it = histories_.find(key);
  if (it == histories_.end()) return std::nullopt;
  const KeyHistory& history = it->second;
  if (!config_.memoize_medians) return pooled_median(history, day);
  std::lock_guard lock{cache_mutex_};
  if (history.cache_day != day) {
    obs::add(memo_misses_c_);
    history.cache_value = pooled_median(history, day);
    history.cache_day = day;
  } else {
    obs::add(memo_hits_c_);
  }
  return history.cache_value;
}

GradedExpectation ExpectedRttLearner::expected_with_provenance(
    ExpectedRttKey key, int day) const {
  if (auto fresh = expected(key, day)) {
    return GradedExpectation{fresh, BaselineProvenance::kFresh};
  }
  const auto it = transfers_.find(key.packed);
  if (it != transfers_.end() &&
      day - it->second.day <= config_.transfer_max_age_days) {
    return GradedExpectation{it->second.value * config_.transfer_discount,
                             BaselineProvenance::kTransferred};
  }
  return GradedExpectation{};
}

bool ExpectedRttLearner::transfer_baseline(ExpectedRttKey from_key,
                                           ExpectedRttKey to_key, int day) {
  if (from_key == to_key) return false;
  // Capture the source value NOW — eager capture is what makes the transfer
  // survive the source path's history being evicted afterwards.
  double value = 0.0;
  if (const auto fresh = expected(from_key, day)) {
    value = *fresh;
  } else if (const auto it = transfers_.find(from_key.packed);
             it != transfers_.end() &&
             day - it->second.day <= config_.transfer_max_age_days) {
    // Chained transfer (the path churned twice inside the age limit): one
    // more discount compounds at read time.
    value = it->second.value * config_.transfer_discount;
  } else {
    return false;  // source has nothing usable
  }
  // No-clobber: a strictly fresher transfer must not be overwritten by a
  // replayed or late-delivered churn event. A target with real window
  // history still gets the entry recorded — serving always prefers the
  // fresh median (expected_with_provenance), so the entry cannot clobber
  // anything, but it marks the key as recently churned (the soft-badness
  // corroboration signal) and survives the fresh history being evicted.
  if (const auto it = transfers_.find(to_key.packed);
      it != transfers_.end() && it->second.day > day) {
    return false;
  }
  transfers_[to_key.packed] =
      TransferEntry{.day = day, .value = value, .from_key = from_key.packed};
  return true;
}

bool ExpectedRttLearner::recently_churned(ExpectedRttKey key, int day) const {
  const auto it = transfers_.find(key.packed);
  return it != transfers_.end() && it->second.day <= day &&
         day - it->second.day <= config_.transfer_max_age_days;
}

std::size_t ExpectedRttLearner::history_size(ExpectedRttKey key,
                                             int day) const {
  if (store_) {
    return store_->window_sample_count(key.packed, day, config_.window_days);
  }
  const auto it = histories_.find(key);
  if (it == histories_.end()) return 0;
  std::size_t n = 0;
  for (const auto& reservoir : it->second.days) {
    if (reservoir.day >= day || reservoir.day < day - config_.window_days) {
      continue;
    }
    n += reservoir.sample.size();
  }
  return n;
}

void ExpectedRttLearner::evict_stale(int day) {
  // Transfers past the age limit stopped being served already; drop them so
  // churned-away paths don't grow the side table forever.
  for (auto it = transfers_.begin(); it != transfers_.end();) {
    if (day - it->second.day > config_.transfer_max_age_days) {
      it = transfers_.erase(it);
    } else {
      ++it;
    }
  }
  if (store_) {
    const std::size_t dropped =
        store_->evict_stale(day - config_.window_days);
    obs::add(evictions_c_, dropped);
    // Dropped reservoirs may sit inside the window of a cached older query
    // day; recomputation is deterministic, so a blanket clear is safe.
    if (dropped > 0) columnar_memo_.clear();
    obs::set(tracked_keys_g_, static_cast<double>(store_->tracked_keys()));
    return;
  }
  const int cutoff = day - config_.window_days;
  // Only visit day buckets past the cutoff: each bucket lists the keys that
  // created a reservoir on that day, so work tracks what expires rather
  // than the full tracked-key count.
  for (auto bucket = keys_by_day_.begin();
       bucket != keys_by_day_.end() && bucket->first < cutoff;) {
    for (const ExpectedRttKey key : bucket->second) {
      const auto it = histories_.find(key);
      if (it == histories_.end()) continue;  // already fully evicted
      auto& history = it->second;
      bool popped = false;
      while (!history.days.empty() && history.days.front().day < cutoff) {
        history.days.pop_front();
        popped = true;
        obs::add(evictions_c_);
      }
      // A popped reservoir may sit inside the window of a cached (older)
      // query day, so any cached value is suspect now.
      if (popped) history.cache_day = INT_MIN;
      if (history.days.empty()) {
        histories_.erase(it);  // keys that churned away must not leak
      }
    }
    bucket = keys_by_day_.erase(bucket);
  }
  obs::set(tracked_keys_g_, static_cast<double>(histories_.size()));
}

void ExpectedRttLearner::save_state(store::SnapshotWriter& writer) const {
  std::string& out = writer.section("learner");
  // Format 2 = format 1 + the trailing transfer side table. The table is
  // serialized identically on both backends (std::map order), so transferred
  // provenance round-trips bit-identically everywhere.
  store::put_varint(out, 2);  // learner payload format
  store::put_varint(
      out, config_.backend == store::StateBackend::kColumnar ? 1 : 0);
  const auto put_transfers = [&] {
    store::put_varint(out, transfers_.size());
    std::uint64_t prev = 0;
    for (const auto& [key, entry] : transfers_) {
      store::put_varint(out, key - prev);
      prev = key;
      store::put_svarint(out, entry.day);
      store::put_f64(out, entry.value);
      store::put_varint(out, entry.from_key);
    }
  };
  if (store_) {
    // Transfers go BEFORE the columnar payload: ReservoirStore::restore
    // consumes to the end of the section (its own expect_done).
    put_transfers();
    store_->save(out);
    return;
  }
  std::vector<std::uint64_t> keys;
  keys.reserve(histories_.size());
  for (const auto& [key, history] : histories_) keys.push_back(key.packed);
  std::sort(keys.begin(), keys.end());
  store::put_varint(out, keys.size());
  std::uint64_t prev = 0;
  for (const std::uint64_t packed : keys) {
    const KeyHistory& history = histories_.at(ExpectedRttKey{packed});
    store::put_varint(out, packed - prev);
    prev = packed;
    store::put_varint(out, history.days.size());
    for (const DayReservoir& reservoir : history.days) {
      store::put_svarint(out, reservoir.day);
      store::put_varint(out, reservoir.seen);
      store::put_varint(out, reservoir.sample.size());
      for (const double v : reservoir.sample) store::put_f64(out, v);
    }
  }
  put_transfers();
}

void ExpectedRttLearner::restore_state(const store::SnapshotReader& reader) {
  store::ByteReader in = reader.section("learner");
  const std::uint64_t format = in.varint();
  if (format != 1 && format != 2) {
    in.fail("unsupported learner payload format " + std::to_string(format));
  }
  const std::uint64_t saved_backend = in.varint();
  const std::uint64_t want_backend =
      config_.backend == store::StateBackend::kColumnar ? 1 : 0;
  if (saved_backend != want_backend) {
    in.fail(std::string{"snapshot was written by the "} +
            (saved_backend == 1 ? "columnar" : "hashmap") +
            " backend but this learner is configured for " +
            std::string{to_string(config_.backend)});
  }
  const auto read_transfers = [&] {
    std::map<std::uint64_t, TransferEntry> transfers;
    if (format >= 2) {
      const std::uint64_t n = in.varint();
      if (n > (std::uint64_t{1} << 40)) in.fail("transfer count absurd");
      std::uint64_t prev = 0;
      for (std::uint64_t i = 0; i < n; ++i) {
        prev += in.varint();
        TransferEntry entry;
        const std::int64_t day64 = in.svarint();
        if (day64 < 0 || day64 > INT_MAX) in.fail("transfer day out of range");
        entry.day = static_cast<int>(day64);
        entry.value = in.f64();
        entry.from_key = in.varint();
        if (!transfers.emplace(prev, entry).second) {
          in.fail("duplicate transfer key");
        }
      }
    }
    return transfers;
  };
  if (store_) {
    auto transfers = read_transfers();
    store_->restore(in);  // consumes the rest of the section, expect_done'd
    transfers_ = std::move(transfers);
    columnar_memo_.clear();
    obs::set(tracked_keys_g_, static_cast<double>(store_->tracked_keys()));
    return;
  }
  std::unordered_map<ExpectedRttKey, KeyHistory, KeyHash> histories;
  std::map<int, std::vector<ExpectedRttKey>> keys_by_day;
  const std::uint64_t n_keys = in.varint();
  if (n_keys > (std::uint64_t{1} << 40)) in.fail("key count absurd");
  histories.reserve(static_cast<std::size_t>(n_keys));
  std::uint64_t prev = 0;
  for (std::uint64_t k = 0; k < n_keys; ++k) {
    prev += in.varint();
    const ExpectedRttKey key{prev};
    KeyHistory& history = histories[key];
    const std::uint64_t n_days = in.varint();
    if (n_days > (std::uint64_t{1} << 32)) in.fail("day count absurd");
    int last_day = INT_MIN;
    for (std::uint64_t d = 0; d < n_days; ++d) {
      DayReservoir reservoir;
      const std::int64_t day64 = in.svarint();
      if (day64 < 0 || day64 > INT_MAX) in.fail("reservoir day out of range");
      reservoir.day = static_cast<int>(day64);
      if (reservoir.day <= last_day) {
        in.fail("reservoir days not strictly ascending");
      }
      last_day = reservoir.day;
      reservoir.seen = in.varint();
      const std::uint64_t n_samples = in.varint();
      if (n_samples >
          static_cast<std::uint64_t>(config_.reservoir_per_day)) {
        in.fail("sample count exceeds reservoir cap");
      }
      reservoir.sample.reserve(static_cast<std::size_t>(n_samples));
      for (std::uint64_t s = 0; s < n_samples; ++s) {
        reservoir.sample.push_back(in.f64());
      }
      keys_by_day[reservoir.day].push_back(key);
      history.days.push_back(std::move(reservoir));
    }
  }
  auto transfers = read_transfers();
  in.expect_done();
  histories_ = std::move(histories);
  keys_by_day_ = std::move(keys_by_day);
  transfers_ = std::move(transfers);
  obs::set(tracked_keys_g_, static_cast<double>(histories_.size()));
}

}  // namespace blameit::analysis
