#include "analysis/quartet.h"

#include <stdexcept>

namespace blameit::analysis {

BadnessThresholds::BadnessThresholds() {
  for (const net::Region region : net::kAllRegions) {
    const auto& profile = net::region_profile(region);
    auto& row = thresholds_[static_cast<std::size_t>(region)];
    row[static_cast<std::size_t>(net::DeviceClass::NonMobile)] =
        profile.rtt_target_ms;
    row[static_cast<std::size_t>(net::DeviceClass::Mobile)] =
        profile.rtt_target_ms + profile.mobile_extra_ms;
  }
}

double BadnessThresholds::threshold(net::Region region,
                                    net::DeviceClass device) const noexcept {
  return thresholds_[static_cast<std::size_t>(region)]
                    [static_cast<std::size_t>(device)];
}

void BadnessThresholds::set(net::Region region, net::DeviceClass device,
                            double ms) {
  if (ms <= 0.0) {
    throw std::invalid_argument{"BadnessThresholds: threshold must be > 0"};
  }
  thresholds_[static_cast<std::size_t>(region)]
             [static_cast<std::size_t>(device)] = ms;
}

QuartetBuilder::QuartetBuilder(const net::Topology* topology,
                               BadnessThresholds thresholds,
                               QuartetBuilderConfig config)
    : topology_(topology), thresholds_(thresholds), config_(config) {
  if (!topology_) throw std::invalid_argument{"QuartetBuilder: null topology"};
  if (config_.min_samples < 1) {
    throw std::invalid_argument{"QuartetBuilder: min_samples must be >= 1"};
  }
}

void QuartetBuilder::add(const RttRecord& record) {
  const auto block = net::Slash24::of(record.client_ip);
  if (!topology_->find_block(block)) {
    ++dropped_unknown_;
    return;
  }
  const QuartetKey key{.block = block,
                       .location = record.location,
                       .device = record.device,
                       .bucket = util::TimeBucket::of(record.time)};
  auto& acc = acc_[key];
  ++acc.count;
  acc.sum += record.rtt_ms;
}

void QuartetBuilder::add_aggregate(const QuartetKey& key, int sample_count,
                                   double mean_rtt_ms) {
  if (sample_count <= 0) return;
  if (!topology_->find_block(key.block)) {
    ++dropped_unknown_;
    return;
  }
  auto& acc = acc_[key];
  acc.count += sample_count;
  acc.sum += mean_rtt_ms * sample_count;
}

std::vector<Quartet> QuartetBuilder::take_bucket(util::TimeBucket bucket) {
  std::vector<Quartet> out;
  for (auto it = acc_.begin(); it != acc_.end();) {
    if (it->first.bucket != bucket) {
      ++it;
      continue;
    }
    const QuartetKey& key = it->first;
    const Accumulator& acc = it->second;
    if (acc.count >= config_.min_samples) {
      const auto* block = topology_->find_block(key.block);
      // find_block succeeded at add() time; topology is immutable.
      const auto* route = topology_->routing().route_for(
          key.location, key.block, bucket.start());
      if (route) {
        Quartet q;
        q.key = key;
        q.sample_count = acc.count;
        q.mean_rtt_ms = acc.sum / acc.count;
        q.middle = route->middle;
        q.client_as = block->client_as;
        q.region = block->region;
        q.bad = q.mean_rtt_ms >
                thresholds_.threshold(block->region, key.device);
        out.push_back(q);
      }
    } else {
      ++dropped_min_samples_;
      dropped_min_samples_records_ += static_cast<std::uint64_t>(acc.count);
    }
    it = acc_.erase(it);
  }
  return out;
}

bool quartet_samples_homogeneous(std::span<const double> samples,
                                 double alpha) {
  if (samples.size() < 4) return true;  // too few to split meaningfully
  const std::size_t half = samples.size() / 2;
  // Interleaved split removes any ordering effects from the storage buckets.
  std::vector<double> a;
  std::vector<double> b;
  a.reserve(half + 1);
  b.reserve(half + 1);
  for (std::size_t i = 0; i < samples.size(); ++i) {
    (i % 2 == 0 ? a : b).push_back(samples[i]);
  }
  return util::ks_test(a, b).same_distribution(alpha);
}

}  // namespace blameit::analysis
