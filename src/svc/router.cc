#include "svc/router.h"

#include <utility>

#include "util/json.h"

namespace blameit::svc {

HttpResponse error_response(int status, std::string_view message) {
  util::json::Writer w;
  w.begin_object().member("error", message).end_object();
  return HttpResponse::json(status, std::move(w).str());
}

void Router::get(std::string path, HttpServer::Handler handler) {
  routes_[std::move(path)] = std::move(handler);
}

HttpResponse Router::dispatch(const HttpRequest& request) const {
  const auto it = routes_.find(request.path);
  if (it == routes_.end()) {
    return error_response(404, "unknown path");
  }
  if (request.method != "GET") {
    return error_response(405, "method not allowed (GET only)");
  }
  try {
    return it->second(request);
  } catch (const std::exception&) {
    return error_response(500, "internal error");
  }
}

}  // namespace blameit::svc
