// The online verdict store: the bridge between the batch pipeline and the
// query service. After every pipeline step the step report is *published*
// into the store; HTTP handler threads then answer lookups against immutable
// snapshots without ever blocking the publisher (or being blocked by it).
//
// Concurrency design (epoch/RCU-style):
//  - Verdicts are sharded by client /24. Each shard is an immutable
//    std::shared_ptr<const map>; publish() builds replacement maps off to
//    the side and swaps the pointers (SnapshotSlot below). Readers load
//    the pointer once and query a frozen map — nothing is held across the
//    lookup, no torn reads, and a reader keeps its snapshot alive for as
//    long as it holds the pointer.
//  - Incident timelines, recent diagnoses, and health live in one
//    atomically-swapped Timeline snapshot, same scheme.
//  - publish() must be called from ONE thread at a time (the pipeline step
//    loop); every read API is safe from any number of threads concurrently
//    with publish(). The epoch counter increments once per publish, after
//    all shards are swapped, so `epoch` answers "has anything changed?"
//
// Verdict semantics: the store keeps the most recent blame per
// ⟨client /24, cloud location⟩, aged out after `verdict_retention_buckets`
// (a verdict is a statement about recent buckets, not history — history is
// the incident timeline's job). Confidence mapping: passive Cloud/Client
// verdicts are definite (High, §4.2's hierarchical elimination); Middle
// verdicts start Low (AS unknown) and adopt the active diagnosis's
// confidence and culprit when one lands; Ambiguous/Insufficient stay Low.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "core/active.h"
#include "core/pipeline.h"
#include "net/ipv4.h"
#include "obs/registry.h"
#include "store/reservoir_store.h"
#include "store/snapshot.h"
#include "util/time.h"

namespace blameit::svc {

/// An atomically-swappable shared_ptr slot. libstdc++'s
/// std::atomic<std::shared_ptr> guards its raw pointer with a lock bit
/// whose reader-side unlock is relaxed — a formal data race (and a
/// ThreadSanitizer report) even though it is benign on real hardware. This
/// slot does the same spin-lock dance with acquire/release on both sides,
/// so the happens-before edge TSan checks for actually exists. The lock is
/// held only to copy or swap one pointer (a refcount bump), so readers and
/// the publisher exclude each other for nanoseconds, never across a scan
/// of the snapshot itself.
template <typename T>
class SnapshotSlot {
 public:
  [[nodiscard]] std::shared_ptr<T> load() const {
    lock();
    std::shared_ptr<T> copy = ptr_;
    unlock();
    return copy;
  }

  void store(std::shared_ptr<T> next) {
    lock();
    ptr_.swap(next);
    unlock();
    // `next` now holds the displaced snapshot; it releases (and possibly
    // destroys the old map) outside the critical section.
  }

 private:
  void lock() const {
    while (flag_.test_and_set(std::memory_order_acquire)) {
      while (flag_.test(std::memory_order_relaxed)) {
      }
    }
  }
  void unlock() const { flag_.clear(std::memory_order_release); }

  mutable std::atomic_flag flag_;  // value-initialized clear since C++20
  std::shared_ptr<T> ptr_;
};

/// One current blame verdict for a ⟨client /24, cloud location⟩ pair.
struct Verdict {
  net::Slash24 block;
  net::CloudLocationId location;
  net::MiddleSegmentId middle;
  net::AsId client_as;
  core::Blame blame{};
  /// Faulty AS when known: passive (cloud/client AS) or active (culprit).
  std::optional<net::AsId> faulty_as;
  core::DiagnosisConfidence confidence = core::DiagnosisConfidence::Low;
  /// The faulty AS came from an on-demand traceroute diagnosis.
  bool from_active = false;
  bool baseline_predates_issue = false;
  /// §13 degradation grade of the expectation this verdict compared
  /// against: fresh learned history, a churn-transferred baseline, or a
  /// cold-path probe measurement.
  core::BaselineGrade grade = core::BaselineGrade::Fresh;
  util::TimeBucket bucket;  ///< bucket the verdict was computed from
  double mean_rtt_ms = 0.0;
  int sample_count = 0;
};

/// One incident run on the timeline: consecutive buckets over which the
/// same aggregate (cloud location / ⟨location, BGP path⟩ / client AS) kept
/// drawing blame.
struct Incident {
  core::Blame category{};  ///< Cloud, Middle, or Client
  net::CloudLocationId location;
  std::optional<net::MiddleSegmentId> middle;  ///< Middle incidents only
  std::optional<net::AsId> faulty_as;
  util::MinuteTime first_seen;
  util::MinuteTime last_seen;
  int buckets = 0;  ///< bad buckets observed in the run
  bool open = true;
  /// Most-degraded §13 baseline grade any of the run's blames carried
  /// (Fresh < Transferred < ProbedCold): consumers see at a glance whether
  /// the incident's evidence leaned on inherited or probe-seeded baselines.
  core::BaselineGrade grade = core::BaselineGrade::Fresh;
};

/// An active-phase diagnosis with the step time it landed at.
struct DiagnosisRecord {
  util::MinuteTime at;
  core::ActiveDiagnosis diagnosis;
};

class VerdictStore {
 public:
  struct Config {
    int shards = 8;
    /// Verdicts older than this many buckets (vs the newest published
    /// bucket) age out of lookup results. Default: one hour of buckets.
    int verdict_retention_buckets = 12;
    /// Closed incidents kept on the published timeline (newest win).
    std::size_t max_closed_incidents = 1024;
    /// Recent diagnoses kept for /v1/diagnoses (newest win).
    std::size_t max_diagnoses = 256;
    /// Which representation holds the live verdict rows. kHashMap keeps a
    /// mutable working map per shard plus an immutable published copy (the
    /// reference path); kColumnar keeps one immutable sorted column block
    /// per shard that doubles as the published snapshot — no copy on
    /// publish, roughly 3-4x less steady-state memory per verdict.
    store::StateBackend backend = store::StateBackend::kHashMap;
    obs::Registry* registry = nullptr;
  };

  struct Health {
    std::uint64_t epoch = 0;  ///< 0 = nothing published yet
    util::MinuteTime last_step{0};
    std::uint64_t steps = 0;
    std::uint64_t degraded_steps = 0;
    /// The latest published step ran passive-only (probing outage).
    bool degraded = false;
  };

  VerdictStore() : VerdictStore(Config{}) {}
  explicit VerdictStore(Config config);

  /// Folds one step report into the store and swaps fresh snapshots in.
  /// Single-publisher: call from the pipeline step thread only.
  void publish(const core::StepReport& report);

  // ---- Read side: safe from any thread, wait-free vs the publisher. ----

  /// Current verdict for one ⟨/24, location⟩, if any is live.
  [[nodiscard]] std::optional<Verdict> lookup(
      net::Slash24 block, net::CloudLocationId location) const;

  /// All live verdicts for one /24 (any location), location-ordered.
  [[nodiscard]] std::vector<Verdict> lookup(net::Slash24 block) const;

  /// All live verdicts whose /24 falls inside `prefix` (full scan; meant
  /// for coarse operator queries, not the hot path). Ordered by block then
  /// location.
  [[nodiscard]] std::vector<Verdict> lookup(net::Prefix prefix) const;

  /// Incidents (open and closed) with last_seen >= since, ordered by
  /// first_seen.
  [[nodiscard]] std::vector<Incident> incidents_since(
      util::MinuteTime since) const;

  /// Most recent active-phase diagnoses, oldest first.
  [[nodiscard]] std::vector<DiagnosisRecord> recent_diagnoses() const;

  [[nodiscard]] Health health() const;
  [[nodiscard]] std::uint64_t epoch() const noexcept {
    return epoch_.load(std::memory_order_acquire);
  }
  [[nodiscard]] const Config& config() const noexcept { return config_; }

  /// Approximate bytes held by the live verdict rows (working state plus
  /// published snapshots; excludes incident/diagnosis rings, which both
  /// backends share). Publisher-thread only.
  [[nodiscard]] std::size_t verdict_state_bytes() const;

  /// Writes the full store state as snapshot section "verdicts" (verdict
  /// rows in a backend-independent key-sorted normal form, plus incident
  /// runs, diagnosis ring, and health counters). Publisher-thread only.
  void save_state(store::SnapshotWriter& writer) const;
  /// Replaces the store state from a snapshot and republishes reader
  /// snapshots. Works across backends (the normal form carries no layout).
  /// Publisher-thread only; concurrent readers see either the old or the
  /// fully-restored state per shard.
  void restore_state(const store::SnapshotReader& reader);

 private:
  using Key = std::uint64_t;  // block << 16 | location
  using ShardMap = std::unordered_map<Key, Verdict>;
  using ShardPtr = std::shared_ptr<const ShardMap>;

  /// One shard's verdicts as immutable parallel columns sorted by key.
  /// ~43 bytes/row vs ~130+ for an unordered_map node of Verdict, and the
  /// publisher's working state IS the published snapshot (no copy).
  struct VerdictColumns {
    std::vector<Key> keys;  // sorted; block = key >> 16, location = low 16
    std::vector<std::uint32_t> middles;
    std::vector<std::uint32_t> client_ases;
    std::vector<std::uint8_t> blames;
    std::vector<std::uint32_t> faulty_ases;  // AsId + 1; 0 = none
    std::vector<std::uint8_t> confidences;
    std::vector<std::uint8_t> flags;  // bit0 from_active, bit1 predates,
                                      // bits2-3 BaselineGrade
    std::vector<std::int64_t> buckets;
    std::vector<double> mean_rtts;
    std::vector<std::int32_t> sample_counts;
    std::int64_t min_bucket = INT64_MAX;  // aging fast-path

    [[nodiscard]] std::size_t rows() const noexcept { return keys.size(); }
    [[nodiscard]] std::size_t bytes() const noexcept;
    void append(Key key, const Verdict& v);
    [[nodiscard]] Verdict row(std::size_t i) const;
  };

  /// Everything non-sharded, swapped as one snapshot.
  struct Timeline {
    std::vector<Incident> incidents;  ///< by first_seen; open runs included
    std::vector<DiagnosisRecord> diagnoses;
    Health health;
  };

  [[nodiscard]] static constexpr Key key_of(
      net::Slash24 block, net::CloudLocationId location) noexcept {
    return (static_cast<Key>(block.block) << 16) | location.value;
  }
  [[nodiscard]] std::size_t shard_of(net::Slash24 block) const noexcept {
    // Blocks are allocated densely; splitmix-style scramble spreads them.
    std::uint64_t x = block.block;
    x ^= x >> 16;
    x *= 0x45d9f3b;
    return static_cast<std::size_t>(x) % shards_.size();
  }

  [[nodiscard]] bool columnar() const noexcept {
    return config_.backend == store::StateBackend::kColumnar;
  }

  void fold_blames(const core::StepReport& report);
  void fold_incidents(const core::StepReport& report);
  void publish_timeline(const core::StepReport& report);
  /// Merges a shard's pending delta into its column block and ages expired
  /// rows; publishes the new block (which is also the new working state).
  void rebuild_columnar_shard(std::size_t i, std::int64_t horizon);
  void publish_restored_timeline(util::MinuteTime last_step, bool degraded);

  Config config_;

  // Publisher-private working state (only the publish thread touches it).
  std::vector<ShardMap> work_;           // mutable mirror of the shards
  std::vector<bool> dirty_;              // which shards changed this publish
  // Columnar backend: per-shard pending upserts and the current immutable
  // block (the same shared_ptr the reader slot holds).
  std::vector<ShardMap> delta_;
  std::vector<std::shared_ptr<const VerdictColumns>> ccur_;
  util::TimeBucket newest_bucket_{0};

  struct OpenRun {
    Incident incident;
    util::TimeBucket last_bucket{0};
  };
  std::unordered_map<Key, OpenRun> open_runs_;  // keyed by packed run key
  std::deque<Incident> closed_;                 // bounded history
  std::deque<DiagnosisRecord> diagnoses_;       // bounded ring
  std::uint64_t steps_ = 0;
  std::uint64_t degraded_steps_ = 0;

  // Shared state (publisher swaps, readers load).
  std::vector<SnapshotSlot<const ShardMap>> shards_;
  std::vector<SnapshotSlot<const VerdictColumns>> cshards_;
  SnapshotSlot<const Timeline> timeline_;
  std::atomic<std::uint64_t> epoch_{0};

  // Instruments (null without a registry).
  obs::Counter* publishes_c_ = nullptr;
  obs::Gauge* verdicts_g_ = nullptr;
  obs::Gauge* open_incidents_g_ = nullptr;
  obs::Histogram* publish_ms_h_ = nullptr;
  obs::Counter* lookups_c_ = nullptr;
};

}  // namespace blameit::svc
