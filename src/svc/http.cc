#include "svc/http.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <charconv>
#include <cstring>
#include <stdexcept>

#include "util/json.h"

namespace blameit::svc {

namespace {

bool iequals(std::string_view a, std::string_view b) noexcept {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

bool is_token_char(char c) noexcept {
  // RFC 7230 tchar, the characters legal in a method or header name.
  static constexpr std::string_view kExtra = "!#$%&'*+-.^_`|~";
  const auto uc = static_cast<unsigned char>(c);
  return std::isalnum(uc) || kExtra.find(c) != std::string_view::npos;
}

std::string_view trim(std::string_view s) noexcept {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) {
    s.remove_suffix(1);
  }
  return s;
}

int hex_value(char c) noexcept {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

}  // namespace

const std::string* HttpRequest::query_param(std::string_view key) const {
  for (const auto& [k, v] : query) {
    if (k == key) return &v;
  }
  return nullptr;
}

const std::string* HttpRequest::header(std::string_view name) const {
  for (const auto& [k, v] : headers) {
    if (iequals(k, name)) return &v;
  }
  return nullptr;
}

std::string_view status_reason(int status) noexcept {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 408: return "Request Timeout";
    case 413: return "Payload Too Large";
    case 431: return "Request Header Fields Too Large";
    case 500: return "Internal Server Error";
    case 503: return "Service Unavailable";
    default: return "Unknown";
  }
}

std::string render_response(const HttpResponse& response, bool keep_alive) {
  std::string out;
  out.reserve(128 + response.body.size());
  out += "HTTP/1.1 ";
  out += std::to_string(response.status);
  out += ' ';
  out += status_reason(response.status);
  out += "\r\nContent-Type: ";
  out += response.content_type;
  out += "\r\nContent-Length: ";
  out += std::to_string(response.body.size());
  out += "\r\nConnection: ";
  out += keep_alive ? "keep-alive" : "close";
  out += "\r\n\r\n";
  out += response.body;
  return out;
}

bool url_decode(std::string_view in, std::string& out, bool plus_is_space) {
  out.clear();
  out.reserve(in.size());
  for (std::size_t i = 0; i < in.size(); ++i) {
    const char c = in[i];
    if (c == '%') {
      if (i + 2 >= in.size()) return false;
      const int hi = hex_value(in[i + 1]);
      const int lo = hex_value(in[i + 2]);
      if (hi < 0 || lo < 0) return false;
      out += static_cast<char>((hi << 4) | lo);
      i += 2;
    } else if (c == '+' && plus_is_space) {
      out += ' ';
    } else {
      out += c;
    }
  }
  return true;
}

ParseStatus parse_request_head(std::string_view buf, const HttpLimits& limits,
                               HttpRequest& request, std::size_t& head_bytes,
                               std::size_t& body_bytes) {
  head_bytes = 0;
  body_bytes = 0;
  const auto head_end = buf.find("\r\n\r\n");
  if (head_end == std::string_view::npos) {
    return buf.size() > limits.max_head_bytes ? ParseStatus::HeadTooLarge
                                              : ParseStatus::NeedMore;
  }
  if (head_end + 4 > limits.max_head_bytes) return ParseStatus::HeadTooLarge;
  head_bytes = head_end + 4;
  const std::string_view head = buf.substr(0, head_end);

  // Request line: METHOD SP target SP HTTP/1.x
  const auto line_end = head.find("\r\n");
  const std::string_view line =
      line_end == std::string_view::npos ? head : head.substr(0, line_end);
  const auto sp1 = line.find(' ');
  const auto sp2 = line.rfind(' ');
  if (sp1 == std::string_view::npos || sp2 == sp1) {
    return ParseStatus::BadRequest;
  }
  const std::string_view method = line.substr(0, sp1);
  const std::string_view target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  const std::string_view version = line.substr(sp2 + 1);
  if (method.empty() || target.empty() ||
      !std::all_of(method.begin(), method.end(), is_token_char)) {
    return ParseStatus::BadRequest;
  }
  if (target.front() != '/' && target != "*") return ParseStatus::BadRequest;
  if (version != "HTTP/1.1" && version != "HTTP/1.0") {
    return ParseStatus::BadRequest;
  }

  request = HttpRequest{};
  request.method = std::string{method};
  request.target = std::string{target};
  request.version_minor = version.back() == '1' ? 1 : 0;
  request.keep_alive = request.version_minor >= 1;

  // Split target into decoded path + query parameters.
  const auto qpos = target.find('?');
  if (!url_decode(target.substr(0, qpos), request.path, false)) {
    return ParseStatus::BadRequest;
  }
  if (qpos != std::string_view::npos) {
    std::string_view qs = target.substr(qpos + 1);
    while (!qs.empty()) {
      const auto amp = qs.find('&');
      const std::string_view pair =
          amp == std::string_view::npos ? qs : qs.substr(0, amp);
      qs = amp == std::string_view::npos ? std::string_view{}
                                         : qs.substr(amp + 1);
      if (pair.empty()) continue;
      const auto eq = pair.find('=');
      std::string k, v;
      if (!url_decode(pair.substr(0, eq), k, true)) {
        return ParseStatus::BadRequest;
      }
      if (eq != std::string_view::npos &&
          !url_decode(pair.substr(eq + 1), v, true)) {
        return ParseStatus::BadRequest;
      }
      request.query.emplace_back(std::move(k), std::move(v));
    }
  }

  // Header fields.
  std::string_view rest = line_end == std::string_view::npos
                              ? std::string_view{}
                              : head.substr(line_end + 2);
  int count = 0;
  bool have_length = false;
  while (!rest.empty()) {
    const auto eol = rest.find("\r\n");
    const std::string_view field =
        eol == std::string_view::npos ? rest : rest.substr(0, eol);
    rest = eol == std::string_view::npos ? std::string_view{}
                                         : rest.substr(eol + 2);
    if (field.empty()) continue;
    if (++count > limits.max_headers) return ParseStatus::HeadTooLarge;
    const auto colon = field.find(':');
    if (colon == std::string_view::npos || colon == 0) {
      return ParseStatus::BadRequest;
    }
    const std::string_view name = field.substr(0, colon);
    if (!std::all_of(name.begin(), name.end(), is_token_char)) {
      return ParseStatus::BadRequest;  // catches "Name space: v" smuggling
    }
    const std::string_view value = trim(field.substr(colon + 1));
    request.headers.emplace_back(std::string{name}, std::string{value});

    if (iequals(name, "content-length")) {
      std::size_t n = 0;
      const auto [ptr, ec] =
          std::from_chars(value.data(), value.data() + value.size(), n);
      if (ec != std::errc{} || ptr != value.data() + value.size() ||
          (have_length && n != body_bytes)) {
        return ParseStatus::BadRequest;
      }
      have_length = true;
      body_bytes = n;
    } else if (iequals(name, "transfer-encoding")) {
      // Chunked bodies are out of scope; rejecting beats smuggling.
      return ParseStatus::BadRequest;
    } else if (iequals(name, "connection")) {
      if (iequals(value, "close")) request.keep_alive = false;
      if (iequals(value, "keep-alive")) request.keep_alive = true;
    }
  }
  if (body_bytes > limits.max_body_bytes) return ParseStatus::BodyTooLarge;
  return ParseStatus::Ok;
}

// ---------------------------------------------------------------------------
// Server
// ---------------------------------------------------------------------------

HttpServer::HttpServer(Handler handler, HttpServerConfig config)
    : handler_(std::move(handler)),
      config_(std::move(config)),
      active_fds_(static_cast<std::size_t>(std::max(1, config_.workers))) {
  if (!handler_) throw std::invalid_argument{"HttpServer: null handler"};
  config_.workers = std::max(1, config_.workers);
  for (auto& fd : active_fds_) fd.store(-1, std::memory_order_relaxed);
}

HttpServer::~HttpServer() { stop(); }

bool HttpServer::start() {
  if (running_.load(std::memory_order_acquire)) return true;
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) return false;
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(config_.port);
  if (::inet_pton(AF_INET, config_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
          0 ||
      ::listen(listen_fd_, config_.listen_backlog) < 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) ==
      0) {
    port_.store(ntohs(addr.sin_port), std::memory_order_release);
  }

  stopping_.store(false, std::memory_order_release);
  pending_ = std::make_unique<ingest::BoundedQueue<int>>(
      config_.max_pending_connections);
  pool_ = std::make_unique<util::ThreadPool>(config_.workers);
  running_.store(true, std::memory_order_release);
  accept_thread_ = std::thread([this] { accept_loop(); });
  pool_runner_ = std::thread([this] {
    pool_->run(config_.workers, [this](int index) { worker_loop(index); });
  });
  return true;
}

void HttpServer::stop() {
  if (!running_.load(std::memory_order_acquire)) return;
  stopping_.store(true, std::memory_order_release);
  if (accept_thread_.joinable()) accept_thread_.join();
  // No new connections past this point. Close the queue (workers drain the
  // already-accepted sockets) and kick any worker blocked in recv().
  pending_->close();
  for (auto& slot : active_fds_) {
    const int fd = slot.load(std::memory_order_acquire);
    if (fd >= 0) ::shutdown(fd, SHUT_RDWR);
  }
  if (pool_runner_.joinable()) pool_runner_.join();
  // Anything still queued was closed by the draining workers; the queue is
  // empty now. Tear down the listener last.
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  pool_.reset();
  pending_.reset();
  running_.store(false, std::memory_order_release);
}

void HttpServer::accept_loop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int rc = ::poll(&pfd, 1, 100);
    if (rc < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (rc == 0 || !(pfd.revents & POLLIN)) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED || errno == EAGAIN ||
          errno == EWOULDBLOCK) {
        continue;
      }
      break;
    }
    accepted_.fetch_add(1, std::memory_order_relaxed);
    if (pending_->push(fd) == ingest::PushStatus::Closed) {
      ::close(fd);  // raced with stop()
    }
  }
}

void HttpServer::worker_loop(int worker_index) {
  while (true) {
    auto fd = pending_->pop();
    if (!fd) return;  // queue closed and drained
    if (stopping_.load(std::memory_order_acquire)) {
      ::close(*fd);  // draining: shed queued sockets without serving
      continue;
    }
    serve_connection(*fd, worker_index);
  }
}

bool HttpServer::send_error(int fd, int status, std::string_view detail) {
  util::json::Writer w;
  w.begin_object().member("error", detail).end_object();
  const auto wire =
      render_response(HttpResponse::json(status, std::move(w).str()), false);
  (void)::send(fd, wire.data(), wire.size(), MSG_NOSIGNAL);
  return false;
}

void HttpServer::serve_connection(int fd, int worker_index) {
  auto& slot = active_fds_[static_cast<std::size_t>(worker_index)];
  slot.store(fd, std::memory_order_release);

  timeval tv{};
  tv.tv_sec = config_.limits.read_timeout_ms / 1000;
  tv.tv_usec = (config_.limits.read_timeout_ms % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

  std::string buffer;
  char chunk[4096];
  bool alive = true;
  while (alive && !stopping_.load(std::memory_order_acquire)) {
    // Parse everything already buffered (pipelined requests) before
    // touching the socket again.
    HttpRequest request;
    std::size_t head_bytes = 0;
    std::size_t body_bytes = 0;
    const auto status = parse_request_head(buffer, config_.limits, request,
                                           head_bytes, body_bytes);
    switch (status) {
      case ParseStatus::NeedMore: {
        const auto rc = ::recv(fd, chunk, sizeof(chunk), 0);
        if (rc > 0) {
          buffer.append(chunk, static_cast<std::size_t>(rc));
          continue;
        }
        if (rc == 0) {
          // Peer closed. Mid-request garbage gets a 400 the half-closed
          // peer can still read; a clean idle close gets silence.
          alive = buffer.empty() ? false
                                 : send_error(fd, 400, "truncated request");
          continue;
        }
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) {
          alive = buffer.empty() ? false  // idle keep-alive expiry
                                 : send_error(fd, 408, "request timeout");
          continue;
        }
        alive = false;
        continue;
      }
      case ParseStatus::BadRequest:
        alive = send_error(fd, 400, "malformed request");
        continue;
      case ParseStatus::HeadTooLarge:
        alive = send_error(fd, 431, "request head too large");
        continue;
      case ParseStatus::BodyTooLarge:
        alive = send_error(fd, 413, "request body too large");
        continue;
      case ParseStatus::Ok:
        break;
    }

    // Read the declared body (it may be partially buffered already).
    bool body_ok = true;
    while (buffer.size() < head_bytes + body_bytes) {
      const auto rc = ::recv(fd, chunk, sizeof(chunk), 0);
      if (rc > 0) {
        buffer.append(chunk, static_cast<std::size_t>(rc));
        continue;
      }
      if (rc < 0 && errno == EINTR) continue;
      body_ok = false;
      alive = (rc < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
                  ? send_error(fd, 408, "request timeout")
                  : send_error(fd, 400, "truncated body");
      break;
    }
    if (!body_ok) continue;
    request.body = buffer.substr(head_bytes, body_bytes);
    buffer.erase(0, head_bytes + body_bytes);

    HttpResponse response;
    try {
      response = handler_(request);
    } catch (const std::exception&) {
      response = HttpResponse::json(
          500, std::string{R"({"error":"internal error"})"});
    }
    requests_.fetch_add(1, std::memory_order_relaxed);

    const bool keep =
        request.keep_alive && !stopping_.load(std::memory_order_acquire);
    const auto wire = render_response(response, keep);
    std::size_t sent = 0;
    while (sent < wire.size()) {
      const auto rc =
          ::send(fd, wire.data() + sent, wire.size() - sent, MSG_NOSIGNAL);
      if (rc < 0) {
        if (errno == EINTR) continue;
        break;
      }
      sent += static_cast<std::size_t>(rc);
    }
    alive = keep && sent == wire.size();
  }

  slot.store(-1, std::memory_order_release);
  ::close(fd);
}

}  // namespace blameit::svc
