// Dependency-free embedded HTTP/1.1 server for the verdict service: a
// blocking accept loop feeding a bounded connection queue drained by a
// small worker pool (util::ThreadPool). Scope is deliberately narrow — the
// service speaks GET + keep-alive + Content-Length, nothing else (no TLS,
// no chunked encoding, no HTTP/2): it serves JSON to operators and
// scrapers on a trusted network, and every byte of parsing is bounded.
//
// Robustness contract (tested in tests/svc/http_test.cc):
//  - malformed request lines / headers -> 400, connection closed;
//  - oversized headers -> 431, oversized bodies -> 413, closed;
//  - a request truncated by the peer mid-body -> 400 (the half-closed
//    peer can still read the response), idle timeouts -> 408;
//  - pipelined keep-alive requests on one connection are answered in
//    order; the server never crashes on hostile input, it responds.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "ingest/queue.h"
#include "util/thread_pool.h"

namespace blameit::svc {

struct HttpLimits {
  std::size_t max_head_bytes = 16 * 1024;  ///< request line + headers
  std::size_t max_body_bytes = 64 * 1024;
  int max_headers = 64;
  /// Per-read socket timeout; also bounds keep-alive idle time.
  int read_timeout_ms = 5000;
};

struct HttpRequest {
  std::string method;
  std::string target;  ///< raw request target (path + "?" + query)
  std::string path;    ///< decoded path component
  std::vector<std::pair<std::string, std::string>> query;  ///< decoded k=v
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;
  int version_minor = 1;  ///< HTTP/1.<minor>
  bool keep_alive = true;

  /// First query parameter named `key` (decoded), or nullptr.
  [[nodiscard]] const std::string* query_param(std::string_view key) const;
  /// Case-insensitive header lookup, or nullptr.
  [[nodiscard]] const std::string* header(std::string_view name) const;
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "application/json";
  std::string body;

  [[nodiscard]] static HttpResponse json(int status, std::string body) {
    return HttpResponse{status, "application/json", std::move(body)};
  }
  [[nodiscard]] static HttpResponse text(int status, std::string body) {
    return HttpResponse{status, "text/plain; charset=utf-8",
                        std::move(body)};
  }
};

[[nodiscard]] std::string_view status_reason(int status) noexcept;

/// Serializes status line + headers + body (Content-Length always set).
[[nodiscard]] std::string render_response(const HttpResponse& response,
                                          bool keep_alive);

/// Percent-decoding for path/query components ('+' becomes space in query
/// position). Returns false on a malformed escape.
[[nodiscard]] bool url_decode(std::string_view in, std::string& out,
                              bool plus_is_space);

/// Outcome of parsing one request head from a connection buffer.
enum class ParseStatus : std::uint8_t {
  Ok,              ///< head parsed; `head_bytes` consumed
  NeedMore,        ///< no terminating CRLFCRLF yet
  BadRequest,      ///< malformed request line, header, or escape
  HeadTooLarge,    ///< exceeded HttpLimits::max_head_bytes
  BodyTooLarge,    ///< Content-Length exceeds max_body_bytes
};

/// Parses the request head (request line + headers) at the front of `buf`.
/// On Ok, fills `request` (body NOT read here), sets `head_bytes` to the
/// bytes consumed and `body_bytes` to the declared Content-Length.
[[nodiscard]] ParseStatus parse_request_head(std::string_view buf,
                                             const HttpLimits& limits,
                                             HttpRequest& request,
                                             std::size_t& head_bytes,
                                             std::size_t& body_bytes);

struct HttpServerConfig {
  std::string bind_address = "127.0.0.1";
  std::uint16_t port = 0;  ///< 0 = ephemeral; see HttpServer::port()
  int workers = 4;
  int listen_backlog = 64;
  /// Accepted connections waiting for a worker; accept() beyond this
  /// blocks (kernel backlog then applies its own pressure).
  std::size_t max_pending_connections = 256;
  HttpLimits limits;
};

/// The server. start() binds and spawns the accept loop plus the worker
/// pool; stop() (or destruction) drains: listener closed, queue closed,
/// in-flight connections shut down, every thread joined, every fd closed.
class HttpServer {
 public:
  using Handler = std::function<HttpResponse(const HttpRequest&)>;

  HttpServer(Handler handler, HttpServerConfig config = {});
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Binds + listens + starts threads. Returns false (with errno intact)
  /// if the socket could not be bound.
  [[nodiscard]] bool start();
  void stop();

  [[nodiscard]] bool running() const noexcept {
    return running_.load(std::memory_order_acquire);
  }
  /// Actual bound port (resolves port 0 after start()).
  [[nodiscard]] std::uint16_t port() const noexcept {
    return port_.load(std::memory_order_acquire);
  }

  // Served-traffic counters (relaxed; for tests and /metrics wiring).
  [[nodiscard]] std::uint64_t connections_accepted() const noexcept {
    return accepted_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t requests_served() const noexcept {
    return requests_.load(std::memory_order_relaxed);
  }

 private:
  void accept_loop();
  void worker_loop(int worker_index);
  void serve_connection(int fd, int worker_index);
  /// Sends an error response and returns false (= close the connection).
  bool send_error(int fd, int status, std::string_view detail);

  Handler handler_;
  HttpServerConfig config_;

  int listen_fd_ = -1;
  std::atomic<std::uint16_t> port_{0};
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};

  std::unique_ptr<ingest::BoundedQueue<int>> pending_;
  std::thread accept_thread_;
  std::unique_ptr<util::ThreadPool> pool_;
  std::thread pool_runner_;  ///< drives pool_->run(workers, worker_loop)

  /// fd each worker is currently serving (-1 idle); stop() shuts these
  /// down so blocked reads wake immediately instead of riding out their
  /// timeout.
  std::vector<std::atomic<int>> active_fds_;

  std::atomic<std::uint64_t> accepted_{0};
  std::atomic<std::uint64_t> requests_{0};
};

}  // namespace blameit::svc
