#include "svc/service.h"

#include <charconv>
#include <optional>
#include <string_view>

#include "core/blame.h"
#include "util/json.h"

namespace blameit::svc {

namespace {

using util::json::Writer;

/// `client=` accepts an IPv4 address, an "a.b.c.0/24" block, or a wider
/// CIDR prefix. An address or /24 resolves to one block; anything wider
/// stays a prefix scan.
struct ClientSelector {
  std::optional<net::Slash24> block;
  std::optional<net::Prefix> prefix;
};

std::optional<ClientSelector> parse_client(std::string_view s) {
  if (s.find('/') != std::string_view::npos) {
    const auto prefix = net::Prefix::parse(s);
    if (!prefix) return std::nullopt;
    if (prefix->length >= 24) {
      return ClientSelector{net::Slash24::of(net::Ipv4Addr{prefix->network}),
                            std::nullopt};
    }
    return ClientSelector{std::nullopt, prefix};
  }
  const auto addr = net::Ipv4Addr::parse(s);
  if (!addr) return std::nullopt;
  return ClientSelector{net::Slash24::of(*addr), std::nullopt};
}

/// `cloud=` accepts "edge-N" (CloudLocationId::to_string form) or bare N.
std::optional<net::CloudLocationId> parse_cloud(std::string_view s) {
  if (s.starts_with("edge-")) s.remove_prefix(5);
  std::uint16_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(s.data(), s.data() + s.size(), value);
  if (ec != std::errc{} || ptr != s.data() + s.size() || s.empty()) {
    return std::nullopt;
  }
  return net::CloudLocationId{value};
}

void write_verdict(Writer& w, const Verdict& v) {
  w.begin_object()
      .member("client", v.block.to_string())
      .member("cloud", v.location.to_string())
      .member("middle", v.middle.to_string())
      .member("client_as", v.client_as.to_string())
      .member("blame", core::to_string(v.blame))
      .member("confidence", core::to_string(v.confidence))
      .member("grade", core::to_string(v.grade));
  w.key("faulty_as");
  if (v.faulty_as) {
    w.value(v.faulty_as->to_string());
  } else {
    w.null();
  }
  w.member("from_active", v.from_active)
      .member("baseline_predates_issue", v.baseline_predates_issue)
      .member("bucket", v.bucket.index)
      .member("bucket_start_minutes", v.bucket.start().minutes)
      .member("mean_rtt_ms", v.mean_rtt_ms)
      .member("sample_count", v.sample_count)
      .end_object();
}

void write_incident(Writer& w, const Incident& inc) {
  w.begin_object()
      .member("category", core::to_string(inc.category))
      .member("cloud", inc.location.to_string());
  w.key("middle");
  if (inc.middle) {
    w.value(inc.middle->to_string());
  } else {
    w.null();
  }
  w.key("faulty_as");
  if (inc.faulty_as) {
    w.value(inc.faulty_as->to_string());
  } else {
    w.null();
  }
  w.member("first_seen_minutes", inc.first_seen.minutes)
      .member("last_seen_minutes", inc.last_seen.minutes)
      .member("buckets", inc.buckets)
      .member("open", inc.open)
      .member("grade", core::to_string(inc.grade))
      .end_object();
}

void write_diagnosis(Writer& w, const DiagnosisRecord& rec) {
  const auto& d = rec.diagnosis;
  w.begin_object()
      .member("at_minutes", rec.at.minutes)
      .member("cloud", d.location.to_string())
      .member("middle", d.middle.to_string());
  w.key("culprit");
  if (d.culprit) {
    w.value(d.culprit->to_string());
  } else {
    w.null();
  }
  w.member("confidence", core::to_string(d.confidence))
      .member("grade", core::to_string(d.grade))
      .member("probe_reached", d.probe_reached)
      .member("have_baseline", d.have_baseline)
      .member("baseline_predates_issue", d.baseline_predates_issue)
      .member("baseline_stale", d.baseline_stale)
      .member("truncated", d.truncated)
      .member("coarse_middle", d.coarse_middle)
      .member("culprit_increase_ms", d.culprit_increase_ms)
      .member("probes_spent", d.probes_spent)
      .member("retries", d.retries)
      .end_object();
}

}  // namespace

VerdictService::VerdictService(const VerdictStore* store,
                               obs::Registry* registry)
    : store_(store), registry_(registry) {
  router_.get("/v1/verdict",
              [this](const HttpRequest& r) { return verdict(r); });
  router_.get("/v1/incidents",
              [this](const HttpRequest& r) { return incidents(r); });
  router_.get("/v1/diagnoses",
              [this](const HttpRequest& r) { return diagnoses(r); });
  router_.get("/metrics.json",
              [this](const HttpRequest& r) { return metrics_json(r); });
  router_.get("/metrics",
              [this](const HttpRequest& r) { return metrics_text(r); });
  router_.get("/healthz",
              [this](const HttpRequest& r) { return healthz(r); });
}

HttpResponse VerdictService::verdict(const HttpRequest& request) const {
  const auto* client = request.query_param("client");
  if (!client) {
    return error_response(400, "missing required query parameter: client");
  }
  const auto selector = parse_client(*client);
  if (!selector) {
    return error_response(
        400, "client must be an IPv4 address, a /24, or a CIDR prefix");
  }

  if (const auto* cloud = request.query_param("cloud")) {
    const auto location = parse_cloud(*cloud);
    if (!location) {
      return error_response(400, "cloud must be edge-<N> or a numeric id");
    }
    if (!selector->block) {
      return error_response(
          400, "cloud filter requires a single /24 client, not a prefix");
    }
    const auto v = store_->lookup(*selector->block, *location);
    if (!v) {
      return error_response(404, "no live verdict for this client+cloud");
    }
    Writer w;
    write_verdict(w, *v);
    return HttpResponse::json(200, std::move(w).str());
  }

  const auto verdicts = selector->block ? store_->lookup(*selector->block)
                                        : store_->lookup(*selector->prefix);
  Writer w;
  w.begin_object().member("count", verdicts.size());
  w.key("verdicts").begin_array();
  for (const auto& v : verdicts) write_verdict(w, v);
  w.end_array().end_object();
  return HttpResponse::json(200, std::move(w).str());
}

HttpResponse VerdictService::incidents(const HttpRequest& request) const {
  std::int64_t since = 0;
  if (const auto* raw = request.query_param("since")) {
    const auto [ptr, ec] =
        std::from_chars(raw->data(), raw->data() + raw->size(), since);
    if (ec != std::errc{} || ptr != raw->data() + raw->size()) {
      return error_response(400, "since must be an integer minute count");
    }
    // Simulated clocks start at minute 0, so negative cutoffs and cutoffs
    // beyond any plausible run length are caller bugs — reject them loudly
    // rather than silently returning everything / nothing.
    if (since < 0) {
      return error_response(
          400, "since must be >= 0 (minutes since simulation start)");
    }
    constexpr std::int64_t kMaxSinceMinutes =
        std::int64_t{200} * 365 * util::kMinutesPerDay;  // ~200 years
    if (since > kMaxSinceMinutes) {
      return error_response(
          400, "since is implausibly far in the future (max ~200 years of "
               "minutes); check the units — this field is minutes, not "
               "seconds or milliseconds");
    }
  }
  const auto incidents = store_->incidents_since(util::MinuteTime{since});
  Writer w;
  w.begin_object()
      .member("since_minutes", since)
      .member("count", incidents.size());
  w.key("incidents").begin_array();
  for (const auto& inc : incidents) write_incident(w, inc);
  w.end_array().end_object();
  return HttpResponse::json(200, std::move(w).str());
}

HttpResponse VerdictService::diagnoses(const HttpRequest&) const {
  const auto records = store_->recent_diagnoses();
  Writer w;
  w.begin_object().member("count", records.size());
  w.key("diagnoses").begin_array();
  for (const auto& rec : records) write_diagnosis(w, rec);
  w.end_array().end_object();
  return HttpResponse::json(200, std::move(w).str());
}

HttpResponse VerdictService::metrics_json(const HttpRequest&) const {
  const auto snapshot = registry_ ? registry_->snapshot() : obs::Snapshot{};
  return HttpResponse::json(200, obs::to_json(snapshot));
}

HttpResponse VerdictService::metrics_text(const HttpRequest&) const {
  const auto snapshot = registry_ ? registry_->snapshot() : obs::Snapshot{};
  return HttpResponse::text(200, obs::render_line_protocol(snapshot));
}

HttpResponse VerdictService::healthz(const HttpRequest&) const {
  const auto health = store_->health();
  Writer w;
  w.begin_object()
      .member("status", health.degraded ? "degraded" : "ok")
      .member("epoch", health.epoch)
      .member("last_step_minutes", health.last_step.minutes)
      .member("steps", health.steps)
      .member("degraded_steps", health.degraded_steps)
      .end_object();
  return HttpResponse::json(200, std::move(w).str());
}

}  // namespace blameit::svc
