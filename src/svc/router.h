// Exact-path GET router for the verdict service. Deliberately tiny: the
// service exposes a handful of fixed paths, so routing is a map lookup —
// unknown path -> 404, known path with a non-GET method -> 405, and a
// handler that throws -> 500 (all as JSON error bodies).
#pragma once

#include <map>
#include <string>

#include "svc/http.h"

namespace blameit::svc {

/// {"error": message} with the given status.
[[nodiscard]] HttpResponse error_response(int status,
                                          std::string_view message);

class Router {
 public:
  /// Registers a GET handler for an exact (decoded) path.
  void get(std::string path, HttpServer::Handler handler);

  /// Routes one request. Never throws.
  [[nodiscard]] HttpResponse dispatch(const HttpRequest& request) const;

  /// Adapter for HttpServer's constructor. The router must outlive the
  /// returned handler.
  [[nodiscard]] HttpServer::Handler as_handler() const {
    return [this](const HttpRequest& request) { return dispatch(request); };
  }

 private:
  std::map<std::string, HttpServer::Handler, std::less<>> routes_;
};

}  // namespace blameit::svc
