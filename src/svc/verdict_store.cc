#include "svc/verdict_store.h"

#include <algorithm>
#include <map>
#include <stdexcept>

namespace blameit::svc {

namespace {

// Packed identity of an incident run. Top 2 bits select the category so
// cloud/middle/client runs never collide.
constexpr std::uint64_t cloud_run_key(net::CloudLocationId loc) noexcept {
  return (std::uint64_t{1} << 62) | loc.value;
}
constexpr std::uint64_t middle_run_key(net::CloudLocationId loc,
                                       net::MiddleSegmentId mid) noexcept {
  return (std::uint64_t{2} << 62) | (std::uint64_t{loc.value} << 32) |
         mid.value;
}
constexpr std::uint64_t client_run_key(net::AsId as) noexcept {
  return (std::uint64_t{3} << 62) | as.value;
}

}  // namespace

VerdictStore::VerdictStore(Config config)
    : config_(config),
      work_(static_cast<std::size_t>(std::max(1, config.shards))),
      dirty_(work_.size(), false),
      shards_(work_.size()) {
  if (config_.verdict_retention_buckets < 1) {
    throw std::invalid_argument{"VerdictStore: retention must be >= 1"};
  }
  const auto empty = std::make_shared<const ShardMap>();
  for (auto& shard : shards_) shard.store(empty);
  timeline_.store(std::make_shared<const Timeline>());
  auto* r = config_.registry;
  publishes_c_ = obs::counter(r, "svc.store.publishes");
  verdicts_g_ = obs::gauge(r, "svc.store.verdicts");
  open_incidents_g_ = obs::gauge(r, "svc.store.open_incidents");
  publish_ms_h_ = obs::histogram(r, "svc.store.publish_ms");
  lookups_c_ = obs::counter(r, "svc.store.lookups");
}

void VerdictStore::publish(const core::StepReport& report) {
  const obs::ScopedTimer span{publish_ms_h_};
  ++steps_;
  degraded_steps_ += report.degraded_passive_only;

  fold_blames(report);
  fold_incidents(report);

  // Swap the shards that changed. Readers that loaded the old pointer keep
  // a consistent (just slightly stale) view until they drop it.
  std::size_t live = 0;
  for (std::size_t i = 0; i < work_.size(); ++i) {
    live += work_[i].size();
    if (!dirty_[i]) continue;
    shards_[i].store(std::make_shared<const ShardMap>(work_[i]));
    dirty_[i] = false;
  }
  publish_timeline(report);
  epoch_.fetch_add(1, std::memory_order_release);

  obs::add(publishes_c_);
  obs::set(verdicts_g_, static_cast<double>(live));
  obs::set(open_incidents_g_, static_cast<double>(open_runs_.size()));
}

void VerdictStore::fold_blames(const core::StepReport& report) {
  // Active diagnoses of this step, matched to Middle verdicts by
  // ⟨location, BGP path⟩.
  std::map<std::pair<std::uint32_t, std::uint32_t>,
           const core::ActiveDiagnosis*>
      diag_by_issue;
  for (const auto& d : report.diagnoses) {
    diag_by_issue[{d.location.value, d.middle.value}] = &d;
  }

  for (const auto& b : report.blames) {
    Verdict v;
    v.block = b.quartet.key.block;
    v.location = b.quartet.key.location;
    v.middle = b.quartet.middle;
    v.client_as = b.quartet.client_as;
    v.blame = b.blame;
    v.faulty_as = b.faulty_as;
    v.bucket = b.quartet.key.bucket;
    v.mean_rtt_ms = b.quartet.mean_rtt_ms;
    v.sample_count = b.quartet.sample_count;
    switch (b.blame) {
      case core::Blame::Cloud:
      case core::Blame::Client:
        // Passive elimination pinned these down (§4.2).
        v.confidence = core::DiagnosisConfidence::High;
        break;
      case core::Blame::Middle: {
        v.confidence = core::DiagnosisConfidence::Low;
        const auto it = diag_by_issue.find(
            {v.location.value, v.middle.value});
        if (it != diag_by_issue.end()) {
          const auto* d = it->second;
          v.confidence = d->confidence;
          v.from_active = true;
          v.baseline_predates_issue = d->baseline_predates_issue;
          if (d->culprit) v.faulty_as = d->culprit;
        }
        break;
      }
      case core::Blame::Ambiguous:
      case core::Blame::Insufficient:
        v.confidence = core::DiagnosisConfidence::Low;
        break;
    }
    newest_bucket_ = std::max(newest_bucket_, v.bucket);
    const auto shard = shard_of(v.block);
    work_[shard][key_of(v.block, v.location)] = v;
    dirty_[shard] = true;
  }

  // Age out verdicts that fell off the retention window.
  const std::int64_t horizon =
      newest_bucket_.index - config_.verdict_retention_buckets;
  for (std::size_t i = 0; i < work_.size(); ++i) {
    for (auto it = work_[i].begin(); it != work_[i].end();) {
      if (it->second.bucket.index <= horizon) {
        it = work_[i].erase(it);
        dirty_[i] = true;
      } else {
        ++it;
      }
    }
  }
}

void VerdictStore::fold_incidents(const core::StepReport& report) {
  // Culprits named by this step's active phase, for middle-run enrichment.
  std::map<std::uint64_t, net::AsId> culprit_of;
  for (const auto& d : report.diagnoses) {
    if (d.culprit) {
      culprit_of[middle_run_key(d.location, d.middle)] = *d.culprit;
    }
  }

  // Group this report's blames into per-bucket run-key sets, processed in
  // bucket order — a step may span several buckets and a run must extend
  // through each.
  struct KeyInfo {
    Incident proto;  // template used when the run opens
  };
  std::map<std::int64_t, std::map<std::uint64_t, KeyInfo>> by_bucket;
  for (const auto& b : report.blames) {
    std::uint64_t key = 0;
    Incident proto;
    proto.location = b.quartet.key.location;
    switch (b.blame) {
      case core::Blame::Cloud:
        key = cloud_run_key(b.quartet.key.location);
        proto.category = core::Blame::Cloud;
        proto.faulty_as = b.faulty_as;
        break;
      case core::Blame::Middle:
        key = middle_run_key(b.quartet.key.location, b.quartet.middle);
        proto.category = core::Blame::Middle;
        proto.middle = b.quartet.middle;
        break;
      case core::Blame::Client:
        key = client_run_key(b.quartet.client_as);
        proto.category = core::Blame::Client;
        proto.faulty_as = b.faulty_as;
        break;
      default:
        continue;  // Ambiguous/Insufficient never form incidents
    }
    by_bucket[b.quartet.key.bucket.index].try_emplace(key,
                                                      KeyInfo{proto});
  }

  for (const auto& [bucket_index, keys] : by_bucket) {
    const util::TimeBucket bucket{bucket_index};
    auto pending = keys;
    for (auto it = open_runs_.begin(); it != open_runs_.end();) {
      auto& run = it->second;
      const auto hit = pending.find(it->first);
      if (hit != pending.end()) {
        run.incident.last_seen = bucket.start();
        ++run.incident.buckets;
        run.last_bucket = bucket;
        pending.erase(hit);
        ++it;
      } else if (bucket > run.last_bucket) {
        // A later bucket arrived without this key: the run ended.
        run.incident.open = false;
        closed_.push_back(run.incident);
        it = open_runs_.erase(it);
      } else {
        ++it;
      }
    }
    for (const auto& [key, info] : pending) {
      OpenRun run;
      run.incident = info.proto;
      run.incident.first_seen = bucket.start();
      run.incident.last_seen = bucket.start();
      run.incident.buckets = 1;
      run.incident.open = true;
      run.last_bucket = bucket;
      open_runs_.emplace(key, std::move(run));
    }
  }

  // Name the culprit on open middle runs the active phase resolved.
  for (auto& [key, run] : open_runs_) {
    const auto it = culprit_of.find(key);
    if (it != culprit_of.end()) run.incident.faulty_as = it->second;
  }

  while (closed_.size() > config_.max_closed_incidents) closed_.pop_front();

  for (const auto& d : report.diagnoses) {
    diagnoses_.push_back(DiagnosisRecord{report.now, d});
  }
  while (diagnoses_.size() > config_.max_diagnoses) diagnoses_.pop_front();
}

void VerdictStore::publish_timeline(const core::StepReport& report) {
  auto timeline = std::make_shared<Timeline>();
  timeline->incidents.reserve(closed_.size() + open_runs_.size());
  timeline->incidents.assign(closed_.begin(), closed_.end());
  for (const auto& [key, run] : open_runs_) {
    timeline->incidents.push_back(run.incident);
  }
  std::sort(timeline->incidents.begin(), timeline->incidents.end(),
            [](const Incident& a, const Incident& b) {
              return a.first_seen < b.first_seen;
            });
  timeline->diagnoses.assign(diagnoses_.begin(), diagnoses_.end());
  timeline->health =
      Health{.epoch = epoch_.load(std::memory_order_relaxed) + 1,
             .last_step = report.now,
             .steps = steps_,
             .degraded_steps = degraded_steps_,
             .degraded = report.degraded_passive_only};
  timeline_.store(std::move(timeline));
}

std::optional<Verdict> VerdictStore::lookup(
    net::Slash24 block, net::CloudLocationId location) const {
  obs::add(lookups_c_);
  const auto shard = shards_[shard_of(block)].load();
  const auto it = shard->find(key_of(block, location));
  if (it == shard->end()) return std::nullopt;
  return it->second;
}

std::vector<Verdict> VerdictStore::lookup(net::Slash24 block) const {
  obs::add(lookups_c_);
  const auto shard = shards_[shard_of(block)].load();
  std::vector<Verdict> out;
  for (const auto& [key, v] : *shard) {
    if (v.block == block) out.push_back(v);
  }
  std::sort(out.begin(), out.end(), [](const Verdict& a, const Verdict& b) {
    return a.location.value < b.location.value;
  });
  return out;
}

std::vector<Verdict> VerdictStore::lookup(net::Prefix prefix) const {
  obs::add(lookups_c_);
  std::vector<Verdict> out;
  for (const auto& shard_slot : shards_) {
    const auto shard = shard_slot.load();
    for (const auto& [key, v] : *shard) {
      if (prefix.contains(v.block)) out.push_back(v);
    }
  }
  std::sort(out.begin(), out.end(), [](const Verdict& a, const Verdict& b) {
    return a.block == b.block ? a.location.value < b.location.value
                              : a.block < b.block;
  });
  return out;
}

std::vector<Incident> VerdictStore::incidents_since(
    util::MinuteTime since) const {
  const auto timeline = timeline_.load();
  std::vector<Incident> out;
  for (const auto& inc : timeline->incidents) {
    if (inc.last_seen >= since) out.push_back(inc);
  }
  return out;
}

std::vector<DiagnosisRecord> VerdictStore::recent_diagnoses() const {
  const auto timeline = timeline_.load();
  return timeline->diagnoses;
}

VerdictStore::Health VerdictStore::health() const {
  return timeline_.load()->health;
}

}  // namespace blameit::svc
