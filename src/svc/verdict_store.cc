#include "svc/verdict_store.h"

#include <algorithm>
#include <map>
#include <stdexcept>

namespace blameit::svc {

namespace {

// Packed identity of an incident run. Top 2 bits select the category so
// cloud/middle/client runs never collide.
constexpr std::uint64_t cloud_run_key(net::CloudLocationId loc) noexcept {
  return (std::uint64_t{1} << 62) | loc.value;
}
constexpr std::uint64_t middle_run_key(net::CloudLocationId loc,
                                       net::MiddleSegmentId mid) noexcept {
  return (std::uint64_t{2} << 62) | (std::uint64_t{loc.value} << 32) |
         mid.value;
}
constexpr std::uint64_t client_run_key(net::AsId as) noexcept {
  return (std::uint64_t{3} << 62) | as.value;
}

// Rough per-entry bookkeeping cost of an unordered_map node.
constexpr std::size_t kHashNodeOverhead = 48;

void put_incident(std::string& out, const Incident& inc) {
  store::put_varint(out, static_cast<std::uint64_t>(inc.category));
  store::put_varint(out, inc.location.value);
  store::put_varint(out, inc.middle ? inc.middle->value + std::uint64_t{1} : 0);
  store::put_varint(out,
                    inc.faulty_as ? inc.faulty_as->value + std::uint64_t{1} : 0);
  store::put_svarint(out, inc.first_seen.minutes);
  store::put_svarint(out, inc.last_seen.minutes);
  store::put_svarint(out, inc.buckets);
  store::put_varint(out, inc.open ? 1 : 0);
  store::put_varint(out, static_cast<std::uint64_t>(inc.grade));
}

/// `format` is the enclosing verdicts payload format: the §13 grade byte
/// exists from format 2 on (format-1 snapshots predate grades — Fresh).
Incident read_incident(store::ByteReader& in, std::uint64_t format) {
  Incident inc;
  inc.category = static_cast<core::Blame>(in.varint());
  inc.location.value = static_cast<std::uint16_t>(in.varint());
  if (const std::uint64_t mid = in.varint(); mid != 0) {
    inc.middle = net::MiddleSegmentId{static_cast<std::uint32_t>(mid - 1)};
  }
  if (const std::uint64_t as = in.varint(); as != 0) {
    inc.faulty_as = net::AsId{static_cast<std::uint32_t>(as - 1)};
  }
  inc.first_seen.minutes = in.svarint();
  inc.last_seen.minutes = in.svarint();
  inc.buckets = static_cast<int>(in.svarint());
  inc.open = in.varint() != 0;
  if (format >= 2) {
    const std::uint64_t grade = in.varint();
    if (grade > 2) in.fail("incident grade out of range");
    inc.grade = static_cast<core::BaselineGrade>(grade);
  }
  return inc;
}

void put_diagnosis(std::string& out, const DiagnosisRecord& record) {
  const core::ActiveDiagnosis& d = record.diagnosis;
  store::put_svarint(out, record.at.minutes);
  store::put_varint(out, d.location.value);
  store::put_varint(out, d.middle.value);
  // Bits 6-7 carry the §13 grade; format-1 snapshots never set them, so a
  // zero there decodes to Fresh with no format gate needed.
  const std::uint64_t bits =
      (d.probe_reached ? 1u : 0u) | (d.have_baseline ? 2u : 0u) |
      (d.baseline_predates_issue ? 4u : 0u) | (d.baseline_stale ? 8u : 0u) |
      (d.truncated ? 16u : 0u) | (d.coarse_middle ? 32u : 0u) |
      (static_cast<std::uint64_t>(d.grade) << 6);
  store::put_varint(out, bits);
  store::put_varint(out,
                    d.culprit ? d.culprit->value + std::uint64_t{1} : 0);
  store::put_f64(out, d.culprit_increase_ms);
  store::put_varint(out, static_cast<std::uint64_t>(d.confidence));
  store::put_svarint(out, d.probes_spent);
  store::put_svarint(out, d.retries);
  const sim::TracerouteResult& p = d.probe;
  store::put_varint(out, p.from.value);
  store::put_varint(out, p.target.block);
  store::put_svarint(out, p.time.minutes);
  store::put_f64(out, p.cloud_ms);
  const std::uint64_t pbits = (p.reached ? 1u : 0u) | (p.truncated ? 2u : 0u) |
                              (p.lost ? 4u : 0u) | (p.no_route ? 8u : 0u) |
                              (p.in_outage ? 16u : 0u);
  store::put_varint(out, pbits);
  store::put_varint(out, p.hops.size());
  for (const sim::TracerouteHop& hop : p.hops) {
    store::put_varint(out, hop.as.value);
    store::put_f64(out, hop.cumulative_rtt_ms);
  }
}

DiagnosisRecord read_diagnosis(store::ByteReader& in) {
  DiagnosisRecord record;
  core::ActiveDiagnosis& d = record.diagnosis;
  record.at.minutes = in.svarint();
  d.location.value = static_cast<std::uint16_t>(in.varint());
  d.middle.value = static_cast<std::uint32_t>(in.varint());
  const std::uint64_t bits = in.varint();
  d.probe_reached = (bits & 1) != 0;
  d.have_baseline = (bits & 2) != 0;
  d.baseline_predates_issue = (bits & 4) != 0;
  d.baseline_stale = (bits & 8) != 0;
  d.truncated = (bits & 16) != 0;
  d.coarse_middle = (bits & 32) != 0;
  if (((bits >> 6) & 3) > 2) in.fail("diagnosis grade out of range");
  d.grade = static_cast<core::BaselineGrade>((bits >> 6) & 3);
  if (const std::uint64_t as = in.varint(); as != 0) {
    d.culprit = net::AsId{static_cast<std::uint32_t>(as - 1)};
  }
  d.culprit_increase_ms = in.f64();
  d.confidence = static_cast<core::DiagnosisConfidence>(in.varint());
  d.probes_spent = static_cast<int>(in.svarint());
  d.retries = static_cast<int>(in.svarint());
  sim::TracerouteResult& p = d.probe;
  p.from.value = static_cast<std::uint16_t>(in.varint());
  p.target.block = static_cast<std::uint32_t>(in.varint());
  p.time.minutes = in.svarint();
  p.cloud_ms = in.f64();
  const std::uint64_t pbits = in.varint();
  p.reached = (pbits & 1) != 0;
  p.truncated = (pbits & 2) != 0;
  p.lost = (pbits & 4) != 0;
  p.no_route = (pbits & 8) != 0;
  p.in_outage = (pbits & 16) != 0;
  const std::uint64_t n_hops = in.varint();
  if (n_hops > (std::uint64_t{1} << 20)) in.fail("hop count absurd");
  p.hops.reserve(static_cast<std::size_t>(n_hops));
  for (std::uint64_t h = 0; h < n_hops; ++h) {
    sim::TracerouteHop hop;
    hop.as.value = static_cast<std::uint32_t>(in.varint());
    hop.cumulative_rtt_ms = in.f64();
    p.hops.push_back(hop);
  }
  return record;
}

}  // namespace

std::size_t VerdictStore::VerdictColumns::bytes() const noexcept {
  return keys.capacity() * sizeof(Key) +
         middles.capacity() * sizeof(std::uint32_t) +
         client_ases.capacity() * sizeof(std::uint32_t) +
         blames.capacity() + faulty_ases.capacity() * sizeof(std::uint32_t) +
         confidences.capacity() + flags.capacity() +
         buckets.capacity() * sizeof(std::int64_t) +
         mean_rtts.capacity() * sizeof(double) +
         sample_counts.capacity() * sizeof(std::int32_t) + sizeof(*this);
}

void VerdictStore::VerdictColumns::append(Key key, const Verdict& v) {
  keys.push_back(key);
  middles.push_back(v.middle.value);
  client_ases.push_back(v.client_as.value);
  blames.push_back(static_cast<std::uint8_t>(v.blame));
  faulty_ases.push_back(v.faulty_as ? v.faulty_as->value + 1 : 0);
  confidences.push_back(static_cast<std::uint8_t>(v.confidence));
  flags.push_back(static_cast<std::uint8_t>(
      (v.from_active ? 1 : 0) | (v.baseline_predates_issue ? 2 : 0) |
      (static_cast<std::uint8_t>(v.grade) << 2)));
  buckets.push_back(v.bucket.index);
  mean_rtts.push_back(v.mean_rtt_ms);
  sample_counts.push_back(v.sample_count);
  min_bucket = std::min(min_bucket, v.bucket.index);
}

Verdict VerdictStore::VerdictColumns::row(std::size_t i) const {
  Verdict v;
  v.block = net::Slash24{static_cast<std::uint32_t>(keys[i] >> 16)};
  v.location =
      net::CloudLocationId{static_cast<std::uint16_t>(keys[i] & 0xFFFF)};
  v.middle = net::MiddleSegmentId{middles[i]};
  v.client_as = net::AsId{client_ases[i]};
  v.blame = static_cast<core::Blame>(blames[i]);
  if (faulty_ases[i] != 0) v.faulty_as = net::AsId{faulty_ases[i] - 1};
  v.confidence = static_cast<core::DiagnosisConfidence>(confidences[i]);
  v.from_active = (flags[i] & 1) != 0;
  v.baseline_predates_issue = (flags[i] & 2) != 0;
  v.grade = static_cast<core::BaselineGrade>((flags[i] >> 2) & 3);
  v.bucket = util::TimeBucket{buckets[i]};
  v.mean_rtt_ms = mean_rtts[i];
  v.sample_count = sample_counts[i];
  return v;
}

VerdictStore::VerdictStore(Config config)
    : config_(config),
      work_(static_cast<std::size_t>(std::max(1, config.shards))),
      dirty_(work_.size(), false),
      shards_(work_.size()),
      cshards_(work_.size()) {
  if (config_.verdict_retention_buckets < 1) {
    throw std::invalid_argument{"VerdictStore: retention must be >= 1"};
  }
  const auto empty = std::make_shared<const ShardMap>();
  for (auto& shard : shards_) shard.store(empty);
  if (columnar()) {
    delta_.resize(work_.size());
    ccur_.assign(work_.size(), std::make_shared<const VerdictColumns>());
    for (std::size_t i = 0; i < cshards_.size(); ++i) {
      cshards_[i].store(ccur_[i]);
    }
  }
  timeline_.store(std::make_shared<const Timeline>());
  auto* r = config_.registry;
  publishes_c_ = obs::counter(r, "svc.store.publishes");
  verdicts_g_ = obs::gauge(r, "svc.store.verdicts");
  open_incidents_g_ = obs::gauge(r, "svc.store.open_incidents");
  publish_ms_h_ = obs::histogram(r, "svc.store.publish_ms");
  lookups_c_ = obs::counter(r, "svc.store.lookups");
}

void VerdictStore::publish(const core::StepReport& report) {
  const obs::ScopedTimer span{publish_ms_h_};
  ++steps_;
  degraded_steps_ += report.degraded_passive_only;

  fold_blames(report);
  fold_incidents(report);

  // Swap the shards that changed. Readers that loaded the old pointer keep
  // a consistent (just slightly stale) view until they drop it.
  std::size_t live = 0;
  if (columnar()) {
    const std::int64_t horizon =
        newest_bucket_.index - config_.verdict_retention_buckets;
    for (std::size_t i = 0; i < delta_.size(); ++i) {
      rebuild_columnar_shard(i, horizon);
      live += ccur_[i]->rows();
    }
  } else {
    for (std::size_t i = 0; i < work_.size(); ++i) {
      live += work_[i].size();
      if (!dirty_[i]) continue;
      shards_[i].store(std::make_shared<const ShardMap>(work_[i]));
      dirty_[i] = false;
    }
  }
  publish_timeline(report);
  epoch_.fetch_add(1, std::memory_order_release);

  obs::add(publishes_c_);
  obs::set(verdicts_g_, static_cast<double>(live));
  obs::set(open_incidents_g_, static_cast<double>(open_runs_.size()));
}

void VerdictStore::fold_blames(const core::StepReport& report) {
  // Active diagnoses of this step, matched to Middle verdicts by
  // ⟨location, BGP path⟩.
  std::map<std::pair<std::uint32_t, std::uint32_t>,
           const core::ActiveDiagnosis*>
      diag_by_issue;
  for (const auto& d : report.diagnoses) {
    diag_by_issue[{d.location.value, d.middle.value}] = &d;
  }

  for (const auto& b : report.blames) {
    Verdict v;
    v.block = b.quartet.key.block;
    v.location = b.quartet.key.location;
    v.middle = b.quartet.middle;
    v.client_as = b.quartet.client_as;
    v.blame = b.blame;
    v.faulty_as = b.faulty_as;
    v.grade = b.grade;
    v.bucket = b.quartet.key.bucket;
    v.mean_rtt_ms = b.quartet.mean_rtt_ms;
    v.sample_count = b.quartet.sample_count;
    switch (b.blame) {
      case core::Blame::Cloud:
      case core::Blame::Client:
        // Passive elimination pinned these down (§4.2).
        v.confidence = core::DiagnosisConfidence::High;
        break;
      case core::Blame::Middle: {
        v.confidence = core::DiagnosisConfidence::Low;
        const auto it = diag_by_issue.find(
            {v.location.value, v.middle.value});
        if (it != diag_by_issue.end()) {
          const auto* d = it->second;
          v.confidence = d->confidence;
          v.from_active = true;
          v.baseline_predates_issue = d->baseline_predates_issue;
          if (d->culprit) v.faulty_as = d->culprit;
          // A probed-cold diagnosis supersedes the passive grade: the
          // faulty-AS verdict the reader sees rests on the cold-path
          // measurement, not the (absent or inherited) learned median.
          if (d->grade == core::BaselineGrade::ProbedCold) v.grade = d->grade;
        }
        break;
      }
      case core::Blame::Ambiguous:
      case core::Blame::Insufficient:
        v.confidence = core::DiagnosisConfidence::Low;
        break;
    }
    newest_bucket_ = std::max(newest_bucket_, v.bucket);
    const auto shard = shard_of(v.block);
    if (columnar()) {
      delta_[shard][key_of(v.block, v.location)] = v;
    } else {
      work_[shard][key_of(v.block, v.location)] = v;
      dirty_[shard] = true;
    }
  }

  if (columnar()) return;  // aging happens during the column rebuild

  // Age out verdicts that fell off the retention window.
  const std::int64_t horizon =
      newest_bucket_.index - config_.verdict_retention_buckets;
  for (std::size_t i = 0; i < work_.size(); ++i) {
    for (auto it = work_[i].begin(); it != work_[i].end();) {
      if (it->second.bucket.index <= horizon) {
        it = work_[i].erase(it);
        dirty_[i] = true;
      } else {
        ++it;
      }
    }
  }
}

void VerdictStore::rebuild_columnar_shard(std::size_t i,
                                          std::int64_t horizon) {
  ShardMap& delta = delta_[i];
  const VerdictColumns& old = *ccur_[i];
  const bool needs_age = old.rows() > 0 && old.min_bucket <= horizon;
  if (delta.empty() && !needs_age) return;

  // Sort the delta once; merge-walk against the old (already sorted) block.
  std::vector<std::pair<Key, const Verdict*>> upserts;
  upserts.reserve(delta.size());
  for (const auto& [key, v] : delta) upserts.emplace_back(key, &v);
  std::sort(upserts.begin(), upserts.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });

  auto next = std::make_shared<VerdictColumns>();
  next->keys.reserve(old.rows() + upserts.size());
  std::size_t oi = 0;
  std::size_t di = 0;
  while (oi < old.rows() || di < upserts.size()) {
    const bool take_delta =
        di < upserts.size() &&
        (oi >= old.rows() || upserts[di].first <= old.keys[oi]);
    if (take_delta) {
      if (oi < old.rows() && upserts[di].first == old.keys[oi]) {
        ++oi;  // the delta row supersedes the old one
      }
      const Verdict& v = *upserts[di].second;
      // Same rule as the hash path: upsert, then age — a row older than
      // the horizon (however it got here) does not survive the publish.
      if (v.bucket.index > horizon) next->append(upserts[di].first, v);
      ++di;
    } else {
      if (old.buckets[oi] > horizon) {
        next->append(old.keys[oi], old.row(oi));
      }
      ++oi;
    }
  }
  delta.clear();
  ccur_[i] = std::move(next);
  cshards_[i].store(ccur_[i]);
}

void VerdictStore::fold_incidents(const core::StepReport& report) {
  // Culprits named by this step's active phase, for middle-run enrichment.
  std::map<std::uint64_t, net::AsId> culprit_of;
  std::map<std::uint64_t, core::BaselineGrade> diag_grade_of;
  for (const auto& d : report.diagnoses) {
    if (d.culprit) {
      culprit_of[middle_run_key(d.location, d.middle)] = *d.culprit;
    }
    if (d.grade == core::BaselineGrade::ProbedCold) {
      diag_grade_of[middle_run_key(d.location, d.middle)] = d.grade;
    }
  }

  // Group this report's blames into per-bucket run-key sets, processed in
  // bucket order — a step may span several buckets and a run must extend
  // through each.
  struct KeyInfo {
    Incident proto;  // template used when the run opens
  };
  std::map<std::int64_t, std::map<std::uint64_t, KeyInfo>> by_bucket;
  for (const auto& b : report.blames) {
    std::uint64_t key = 0;
    Incident proto;
    proto.location = b.quartet.key.location;
    proto.grade = b.grade;
    switch (b.blame) {
      case core::Blame::Cloud:
        key = cloud_run_key(b.quartet.key.location);
        proto.category = core::Blame::Cloud;
        proto.faulty_as = b.faulty_as;
        break;
      case core::Blame::Middle:
        key = middle_run_key(b.quartet.key.location, b.quartet.middle);
        proto.category = core::Blame::Middle;
        proto.middle = b.quartet.middle;
        break;
      case core::Blame::Client:
        key = client_run_key(b.quartet.client_as);
        proto.category = core::Blame::Client;
        proto.faulty_as = b.faulty_as;
        break;
      default:
        continue;  // Ambiguous/Insufficient never form incidents
    }
    const auto [slot, inserted] =
        by_bucket[b.quartet.key.bucket.index].try_emplace(key,
                                                          KeyInfo{proto});
    if (!inserted) {
      // The run's grade is the most-degraded evidence seen: any quartet of
      // the group leaning on a transferred baseline marks the bucket.
      slot->second.proto.grade =
          std::max(slot->second.proto.grade, proto.grade);
    }
  }

  for (const auto& [bucket_index, keys] : by_bucket) {
    const util::TimeBucket bucket{bucket_index};
    auto pending = keys;
    for (auto it = open_runs_.begin(); it != open_runs_.end();) {
      auto& run = it->second;
      const auto hit = pending.find(it->first);
      if (hit != pending.end()) {
        run.incident.last_seen = bucket.start();
        ++run.incident.buckets;
        run.incident.grade =
            std::max(run.incident.grade, hit->second.proto.grade);
        run.last_bucket = bucket;
        pending.erase(hit);
        ++it;
      } else if (bucket > run.last_bucket) {
        // A later bucket arrived without this key: the run ended.
        run.incident.open = false;
        closed_.push_back(run.incident);
        it = open_runs_.erase(it);
      } else {
        ++it;
      }
    }
    for (const auto& [key, info] : pending) {
      OpenRun run;
      run.incident = info.proto;
      run.incident.first_seen = bucket.start();
      run.incident.last_seen = bucket.start();
      run.incident.buckets = 1;
      run.incident.open = true;
      run.last_bucket = bucket;
      open_runs_.emplace(key, std::move(run));
    }
  }

  // Name the culprit on open middle runs the active phase resolved; a
  // probed-cold diagnosis also escalates the run's grade (the named AS
  // rests on a cold-path measurement).
  for (auto& [key, run] : open_runs_) {
    const auto it = culprit_of.find(key);
    if (it != culprit_of.end()) run.incident.faulty_as = it->second;
    const auto git = diag_grade_of.find(key);
    if (git != diag_grade_of.end()) {
      run.incident.grade = std::max(run.incident.grade, git->second);
    }
  }

  while (closed_.size() > config_.max_closed_incidents) closed_.pop_front();

  for (const auto& d : report.diagnoses) {
    diagnoses_.push_back(DiagnosisRecord{report.now, d});
  }
  while (diagnoses_.size() > config_.max_diagnoses) diagnoses_.pop_front();
}

void VerdictStore::publish_timeline(const core::StepReport& report) {
  auto timeline = std::make_shared<Timeline>();
  timeline->incidents.reserve(closed_.size() + open_runs_.size());
  timeline->incidents.assign(closed_.begin(), closed_.end());
  for (const auto& [key, run] : open_runs_) {
    timeline->incidents.push_back(run.incident);
  }
  std::sort(timeline->incidents.begin(), timeline->incidents.end(),
            [](const Incident& a, const Incident& b) {
              return a.first_seen < b.first_seen;
            });
  timeline->diagnoses.assign(diagnoses_.begin(), diagnoses_.end());
  timeline->health =
      Health{.epoch = epoch_.load(std::memory_order_relaxed) + 1,
             .last_step = report.now,
             .steps = steps_,
             .degraded_steps = degraded_steps_,
             .degraded = report.degraded_passive_only};
  timeline_.store(std::move(timeline));
}

std::optional<Verdict> VerdictStore::lookup(
    net::Slash24 block, net::CloudLocationId location) const {
  obs::add(lookups_c_);
  if (columnar()) {
    const auto cols = cshards_[shard_of(block)].load();
    const Key key = key_of(block, location);
    const auto it =
        std::lower_bound(cols->keys.begin(), cols->keys.end(), key);
    if (it == cols->keys.end() || *it != key) return std::nullopt;
    return cols->row(static_cast<std::size_t>(it - cols->keys.begin()));
  }
  const auto shard = shards_[shard_of(block)].load();
  const auto it = shard->find(key_of(block, location));
  if (it == shard->end()) return std::nullopt;
  return it->second;
}

std::vector<Verdict> VerdictStore::lookup(net::Slash24 block) const {
  obs::add(lookups_c_);
  std::vector<Verdict> out;
  if (columnar()) {
    const auto cols = cshards_[shard_of(block)].load();
    // All keys of this /24 are the contiguous range [block<<16, block+1<<16);
    // rows are key-sorted, so the result is already location-ordered.
    const Key lo = static_cast<Key>(block.block) << 16;
    const auto first =
        std::lower_bound(cols->keys.begin(), cols->keys.end(), lo);
    const auto last = std::lower_bound(first, cols->keys.end(),
                                       lo + (Key{1} << 16));
    for (auto it = first; it != last; ++it) {
      out.push_back(
          cols->row(static_cast<std::size_t>(it - cols->keys.begin())));
    }
    return out;
  }
  const auto shard = shards_[shard_of(block)].load();
  for (const auto& [key, v] : *shard) {
    if (v.block == block) out.push_back(v);
  }
  std::sort(out.begin(), out.end(), [](const Verdict& a, const Verdict& b) {
    return a.location.value < b.location.value;
  });
  return out;
}

std::vector<Verdict> VerdictStore::lookup(net::Prefix prefix) const {
  obs::add(lookups_c_);
  std::vector<Verdict> out;
  if (columnar()) {
    for (const auto& slot : cshards_) {
      const auto cols = slot.load();
      for (std::size_t i = 0; i < cols->rows(); ++i) {
        const net::Slash24 block{static_cast<std::uint32_t>(cols->keys[i] >>
                                                            16)};
        if (prefix.contains(block)) out.push_back(cols->row(i));
      }
    }
  } else {
    for (const auto& shard_slot : shards_) {
      const auto shard = shard_slot.load();
      for (const auto& [key, v] : *shard) {
        if (prefix.contains(v.block)) out.push_back(v);
      }
    }
  }
  std::sort(out.begin(), out.end(), [](const Verdict& a, const Verdict& b) {
    return a.block == b.block ? a.location.value < b.location.value
                              : a.block < b.block;
  });
  return out;
}

std::vector<Incident> VerdictStore::incidents_since(
    util::MinuteTime since) const {
  const auto timeline = timeline_.load();
  std::vector<Incident> out;
  for (const auto& inc : timeline->incidents) {
    if (inc.last_seen >= since) out.push_back(inc);
  }
  return out;
}

std::vector<DiagnosisRecord> VerdictStore::recent_diagnoses() const {
  const auto timeline = timeline_.load();
  return timeline->diagnoses;
}

VerdictStore::Health VerdictStore::health() const {
  return timeline_.load()->health;
}

std::size_t VerdictStore::verdict_state_bytes() const {
  std::size_t n = 0;
  if (columnar()) {
    for (std::size_t i = 0; i < delta_.size(); ++i) {
      n += delta_[i].size() *
           (sizeof(std::pair<const Key, Verdict>) + kHashNodeOverhead);
      n += ccur_[i]->bytes();  // working state == published snapshot
    }
  } else {
    // The working map AND its latest published copy are both resident.
    for (const auto& shard : work_) {
      n += 2 * shard.size() *
           (sizeof(std::pair<const Key, Verdict>) + kHashNodeOverhead);
    }
  }
  return n;
}

void VerdictStore::save_state(store::SnapshotWriter& writer) const {
  std::string& out = writer.section("verdicts");
  store::put_varint(out, 2);  // verdicts payload format (2 adds §13 grades)
  store::put_svarint(out, newest_bucket_.index);
  store::put_varint(out, steps_);
  store::put_varint(out, degraded_steps_);
  store::put_u64(out, epoch_.load(std::memory_order_relaxed));
  const auto timeline = timeline_.load();
  store::put_svarint(out, timeline->health.last_step.minutes);
  store::put_varint(out, timeline->health.degraded ? 1 : 0);

  // Verdict rows in a backend-independent normal form: globally key-sorted,
  // column-major. (Keys are unique across shards, so a flat sort is exact.)
  std::vector<std::pair<Key, Verdict>> rows;
  if (columnar()) {
    for (std::size_t i = 0; i < ccur_.size(); ++i) {
      const VerdictColumns& cols = *ccur_[i];
      for (std::size_t r = 0; r < cols.rows(); ++r) {
        rows.emplace_back(cols.keys[r], cols.row(r));
      }
      for (const auto& [key, v] : delta_[i]) rows.emplace_back(key, v);
    }
  } else {
    for (const auto& shard : work_) {
      for (const auto& [key, v] : shard) rows.emplace_back(key, v);
    }
  }
  std::sort(rows.begin(), rows.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  // A delta row shadows the block row with the same key (columnar only):
  // keep the later of equal keys... deltas are only non-empty between
  // fold_blames and publish, and save_state runs between publishes, so in
  // practice both sets are disjoint-or-empty; dedupe defensively anyway.
  rows.erase(std::unique(rows.begin(), rows.end(),
                         [](const auto& a, const auto& b) {
                           return a.first == b.first;
                         }),
             rows.end());

  store::put_varint(out, rows.size());
  Key prev = 0;
  for (const auto& [key, v] : rows) {
    store::put_varint(out, key - prev);
    prev = key;
  }
  for (const auto& [key, v] : rows) store::put_varint(out, v.middle.value);
  for (const auto& [key, v] : rows) store::put_varint(out, v.client_as.value);
  for (const auto& [key, v] : rows) {
    out.push_back(static_cast<char>(v.blame));
  }
  for (const auto& [key, v] : rows) {
    store::put_varint(out, v.faulty_as ? v.faulty_as->value + std::uint64_t{1}
                                       : 0);
  }
  for (const auto& [key, v] : rows) {
    out.push_back(static_cast<char>(v.confidence));
  }
  for (const auto& [key, v] : rows) {
    out.push_back(static_cast<char>(
        (v.from_active ? 1 : 0) | (v.baseline_predates_issue ? 2 : 0) |
        (static_cast<int>(v.grade) << 2)));
  }
  for (const auto& [key, v] : rows) store::put_svarint(out, v.bucket.index);
  for (const auto& [key, v] : rows) store::put_f64(out, v.mean_rtt_ms);
  for (const auto& [key, v] : rows) store::put_svarint(out, v.sample_count);

  // Incident machinery: open runs (key-sorted for determinism), closed ring
  // and diagnosis ring in deque order (order is part of the bounded-pop
  // semantics).
  std::vector<std::pair<std::uint64_t, const OpenRun*>> runs;
  runs.reserve(open_runs_.size());
  for (const auto& [key, run] : open_runs_) runs.emplace_back(key, &run);
  std::sort(runs.begin(), runs.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  store::put_varint(out, runs.size());
  for (const auto& [key, run] : runs) {
    store::put_u64(out, key);
    put_incident(out, run->incident);
    store::put_svarint(out, run->last_bucket.index);
  }
  store::put_varint(out, closed_.size());
  for (const Incident& inc : closed_) put_incident(out, inc);
  store::put_varint(out, diagnoses_.size());
  for (const DiagnosisRecord& record : diagnoses_) {
    put_diagnosis(out, record);
  }
}

void VerdictStore::restore_state(const store::SnapshotReader& reader) {
  store::ByteReader in = reader.section("verdicts");
  const std::uint64_t format = in.varint();
  if (format != 1 && format != 2) {
    in.fail("unsupported verdicts payload format " + std::to_string(format));
  }
  const std::int64_t newest_bucket = in.svarint();
  const std::uint64_t steps = in.varint();
  const std::uint64_t degraded_steps = in.varint();
  const std::uint64_t epoch = in.u64();
  const std::int64_t last_step_minutes = in.svarint();
  const bool degraded = in.varint() != 0;

  const std::uint64_t n_rows = in.varint();
  if (n_rows > (std::uint64_t{1} << 40)) in.fail("verdict row count absurd");
  std::vector<Key> keys(static_cast<std::size_t>(n_rows));
  std::vector<Verdict> verdicts(static_cast<std::size_t>(n_rows));
  Key prev = 0;
  for (auto& key : keys) {
    prev += in.varint();
    key = prev;
  }
  for (std::size_t r = 0; r < verdicts.size(); ++r) {
    verdicts[r].block =
        net::Slash24{static_cast<std::uint32_t>(keys[r] >> 16)};
    verdicts[r].location =
        net::CloudLocationId{static_cast<std::uint16_t>(keys[r] & 0xFFFF)};
  }
  for (auto& v : verdicts) {
    v.middle = net::MiddleSegmentId{static_cast<std::uint32_t>(in.varint())};
  }
  for (auto& v : verdicts) {
    v.client_as = net::AsId{static_cast<std::uint32_t>(in.varint())};
  }
  for (auto& v : verdicts) v.blame = static_cast<core::Blame>(in.u8());
  for (auto& v : verdicts) {
    if (const std::uint64_t as = in.varint(); as != 0) {
      v.faulty_as = net::AsId{static_cast<std::uint32_t>(as - 1)};
    }
  }
  for (auto& v : verdicts) {
    v.confidence = static_cast<core::DiagnosisConfidence>(in.u8());
  }
  for (auto& v : verdicts) {
    const std::uint8_t bits = in.u8();
    v.from_active = (bits & 1) != 0;
    v.baseline_predates_issue = (bits & 2) != 0;
    if (((bits >> 2) & 3) > 2) in.fail("verdict grade out of range");
    v.grade = static_cast<core::BaselineGrade>((bits >> 2) & 3);
  }
  for (auto& v : verdicts) v.bucket = util::TimeBucket{in.svarint()};
  for (auto& v : verdicts) v.mean_rtt_ms = in.f64();
  for (auto& v : verdicts) v.sample_count = static_cast<int>(in.svarint());

  const std::uint64_t n_runs = in.varint();
  if (n_runs > (std::uint64_t{1} << 32)) in.fail("open-run count absurd");
  std::unordered_map<Key, OpenRun> open_runs;
  open_runs.reserve(static_cast<std::size_t>(n_runs));
  for (std::uint64_t r = 0; r < n_runs; ++r) {
    const std::uint64_t key = in.u64();
    OpenRun run;
    run.incident = read_incident(in, format);
    run.last_bucket = util::TimeBucket{in.svarint()};
    open_runs.emplace(key, std::move(run));
  }
  const std::uint64_t n_closed = in.varint();
  if (n_closed > (std::uint64_t{1} << 32)) in.fail("closed count absurd");
  std::deque<Incident> closed;
  for (std::uint64_t c = 0; c < n_closed; ++c) {
    closed.push_back(read_incident(in, format));
  }
  const std::uint64_t n_diagnoses = in.varint();
  if (n_diagnoses > (std::uint64_t{1} << 32)) in.fail("diagnosis count absurd");
  std::deque<DiagnosisRecord> diagnoses;
  for (std::uint64_t d = 0; d < n_diagnoses; ++d) {
    diagnoses.push_back(read_diagnosis(in));
  }
  in.expect_done();

  // All parsed cleanly — commit and republish.
  newest_bucket_ = util::TimeBucket{newest_bucket};
  steps_ = steps;
  degraded_steps_ = degraded_steps;
  epoch_.store(epoch, std::memory_order_release);
  open_runs_ = std::move(open_runs);
  closed_ = std::move(closed);
  diagnoses_ = std::move(diagnoses);

  if (columnar()) {
    std::vector<std::shared_ptr<VerdictColumns>> next(cshards_.size());
    for (auto& cols : next) cols = std::make_shared<VerdictColumns>();
    // The global key sort survives the shard split (per-shard subsequences
    // stay sorted), so a straight append per shard builds valid blocks.
    for (std::size_t r = 0; r < keys.size(); ++r) {
      const net::Slash24 block{static_cast<std::uint32_t>(keys[r] >> 16)};
      next[shard_of(block)]->append(keys[r], verdicts[r]);
    }
    for (std::size_t i = 0; i < cshards_.size(); ++i) {
      delta_[i].clear();
      ccur_[i] = std::move(next[i]);
      cshards_[i].store(ccur_[i]);
    }
  } else {
    for (auto& shard : work_) shard.clear();
    for (std::size_t r = 0; r < keys.size(); ++r) {
      work_[shard_of(verdicts[r].block)].emplace(keys[r], verdicts[r]);
    }
    for (std::size_t i = 0; i < work_.size(); ++i) {
      shards_[i].store(std::make_shared<const ShardMap>(work_[i]));
      dirty_[i] = false;
    }
  }
  publish_restored_timeline(util::MinuteTime{last_step_minutes}, degraded);
  obs::set(verdicts_g_, static_cast<double>(keys.size()));
  obs::set(open_incidents_g_, static_cast<double>(open_runs_.size()));
}

void VerdictStore::publish_restored_timeline(util::MinuteTime last_step,
                                             bool degraded) {
  auto timeline = std::make_shared<Timeline>();
  timeline->incidents.reserve(closed_.size() + open_runs_.size());
  timeline->incidents.assign(closed_.begin(), closed_.end());
  for (const auto& [key, run] : open_runs_) {
    timeline->incidents.push_back(run.incident);
  }
  std::sort(timeline->incidents.begin(), timeline->incidents.end(),
            [](const Incident& a, const Incident& b) {
              return a.first_seen < b.first_seen;
            });
  timeline->diagnoses.assign(diagnoses_.begin(), diagnoses_.end());
  // epoch_ already holds the restored published count; unlike
  // publish_timeline there is no pending increment to anticipate.
  timeline->health = Health{.epoch = epoch_.load(std::memory_order_relaxed),
                            .last_step = last_step,
                            .steps = steps_,
                            .degraded_steps = degraded_steps_,
                            .degraded = degraded};
  timeline_.store(std::move(timeline));
}

}  // namespace blameit::svc
