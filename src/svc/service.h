// The verdict service: wires a VerdictStore and an obs::Registry onto the
// HTTP router. Endpoints (all GET, all JSON unless noted):
//
//   /v1/verdict?client=<ip|a.b.c.0/24|cidr>[&cloud=<edge-N|N>]
//       Current blame verdict(s) with DiagnosisConfidence. With `cloud`,
//       one verdict object (404 if none is live); without, the array of
//       live verdicts for the client across locations. A CIDR wider than
//       /24 returns every covered verdict.
//   /v1/incidents?since=<minutes>
//       Incident runs (open and closed) with last_seen >= since
//       (default 0), ordered by first_seen.
//   /v1/diagnoses
//       Recent active-phase diagnoses: culprit, confidence,
//       baseline_predates_issue, probes spent.
//   /metrics.json   obs::Registry snapshot as JSON.
//   /metrics        the same snapshot as Influx-style line protocol (text).
//   /healthz        {"status": "ok"|"degraded", ...} — degraded while the
//                   latest step ran passive-only (probing outage).
#pragma once

#include "obs/registry.h"
#include "svc/http.h"
#include "svc/router.h"
#include "svc/verdict_store.h"

namespace blameit::svc {

class VerdictService {
 public:
  /// `store` must outlive the service; `registry` may be null (the metrics
  /// endpoints then serve an empty snapshot).
  explicit VerdictService(const VerdictStore* store,
                          obs::Registry* registry = nullptr);

  [[nodiscard]] const Router& router() const noexcept { return router_; }
  /// Handler for HttpServer. The service must outlive the server.
  [[nodiscard]] HttpServer::Handler handler() const {
    return router_.as_handler();
  }

 private:
  [[nodiscard]] HttpResponse verdict(const HttpRequest& request) const;
  [[nodiscard]] HttpResponse incidents(const HttpRequest& request) const;
  [[nodiscard]] HttpResponse diagnoses(const HttpRequest& request) const;
  [[nodiscard]] HttpResponse metrics_json(const HttpRequest& request) const;
  [[nodiscard]] HttpResponse metrics_text(const HttpRequest& request) const;
  [[nodiscard]] HttpResponse healthz(const HttpRequest& request) const;

  const VerdictStore* store_;
  obs::Registry* registry_;
  Router router_;
};

}  // namespace blameit::svc
