# Empty compiler generated dependencies file for blameit_net.
# This may be replaced when dependencies are built.
