
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/as_graph.cc" "src/net/CMakeFiles/blameit_net.dir/as_graph.cc.o" "gcc" "src/net/CMakeFiles/blameit_net.dir/as_graph.cc.o.d"
  "/root/repo/src/net/asn.cc" "src/net/CMakeFiles/blameit_net.dir/asn.cc.o" "gcc" "src/net/CMakeFiles/blameit_net.dir/asn.cc.o.d"
  "/root/repo/src/net/bgp.cc" "src/net/CMakeFiles/blameit_net.dir/bgp.cc.o" "gcc" "src/net/CMakeFiles/blameit_net.dir/bgp.cc.o.d"
  "/root/repo/src/net/geo.cc" "src/net/CMakeFiles/blameit_net.dir/geo.cc.o" "gcc" "src/net/CMakeFiles/blameit_net.dir/geo.cc.o.d"
  "/root/repo/src/net/ipv4.cc" "src/net/CMakeFiles/blameit_net.dir/ipv4.cc.o" "gcc" "src/net/CMakeFiles/blameit_net.dir/ipv4.cc.o.d"
  "/root/repo/src/net/topology.cc" "src/net/CMakeFiles/blameit_net.dir/topology.cc.o" "gcc" "src/net/CMakeFiles/blameit_net.dir/topology.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/blameit_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
