file(REMOVE_RECURSE
  "libblameit_net.a"
)
