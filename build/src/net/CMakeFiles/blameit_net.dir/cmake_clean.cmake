file(REMOVE_RECURSE
  "CMakeFiles/blameit_net.dir/as_graph.cc.o"
  "CMakeFiles/blameit_net.dir/as_graph.cc.o.d"
  "CMakeFiles/blameit_net.dir/asn.cc.o"
  "CMakeFiles/blameit_net.dir/asn.cc.o.d"
  "CMakeFiles/blameit_net.dir/bgp.cc.o"
  "CMakeFiles/blameit_net.dir/bgp.cc.o.d"
  "CMakeFiles/blameit_net.dir/geo.cc.o"
  "CMakeFiles/blameit_net.dir/geo.cc.o.d"
  "CMakeFiles/blameit_net.dir/ipv4.cc.o"
  "CMakeFiles/blameit_net.dir/ipv4.cc.o.d"
  "CMakeFiles/blameit_net.dir/topology.cc.o"
  "CMakeFiles/blameit_net.dir/topology.cc.o.d"
  "libblameit_net.a"
  "libblameit_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/blameit_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
