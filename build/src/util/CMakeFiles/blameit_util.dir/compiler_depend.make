# Empty compiler generated dependencies file for blameit_util.
# This may be replaced when dependencies are built.
