file(REMOVE_RECURSE
  "CMakeFiles/blameit_util.dir/histogram.cc.o"
  "CMakeFiles/blameit_util.dir/histogram.cc.o.d"
  "CMakeFiles/blameit_util.dir/rng.cc.o"
  "CMakeFiles/blameit_util.dir/rng.cc.o.d"
  "CMakeFiles/blameit_util.dir/stats.cc.o"
  "CMakeFiles/blameit_util.dir/stats.cc.o.d"
  "CMakeFiles/blameit_util.dir/table.cc.o"
  "CMakeFiles/blameit_util.dir/table.cc.o.d"
  "CMakeFiles/blameit_util.dir/time.cc.o"
  "CMakeFiles/blameit_util.dir/time.cc.o.d"
  "libblameit_util.a"
  "libblameit_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/blameit_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
