file(REMOVE_RECURSE
  "libblameit_util.a"
)
