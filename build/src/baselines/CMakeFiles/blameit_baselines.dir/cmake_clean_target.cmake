file(REMOVE_RECURSE
  "libblameit_baselines.a"
)
