# Empty compiler generated dependencies file for blameit_baselines.
# This may be replaced when dependencies are built.
