file(REMOVE_RECURSE
  "CMakeFiles/blameit_baselines.dir/active_only.cc.o"
  "CMakeFiles/blameit_baselines.dir/active_only.cc.o.d"
  "CMakeFiles/blameit_baselines.dir/as_metro.cc.o"
  "CMakeFiles/blameit_baselines.dir/as_metro.cc.o.d"
  "CMakeFiles/blameit_baselines.dir/tomography.cc.o"
  "CMakeFiles/blameit_baselines.dir/tomography.cc.o.d"
  "CMakeFiles/blameit_baselines.dir/trinocular.cc.o"
  "CMakeFiles/blameit_baselines.dir/trinocular.cc.o.d"
  "libblameit_baselines.a"
  "libblameit_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/blameit_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
