
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/fault.cc" "src/sim/CMakeFiles/blameit_sim.dir/fault.cc.o" "gcc" "src/sim/CMakeFiles/blameit_sim.dir/fault.cc.o.d"
  "/root/repo/src/sim/population.cc" "src/sim/CMakeFiles/blameit_sim.dir/population.cc.o" "gcc" "src/sim/CMakeFiles/blameit_sim.dir/population.cc.o.d"
  "/root/repo/src/sim/rtt_model.cc" "src/sim/CMakeFiles/blameit_sim.dir/rtt_model.cc.o" "gcc" "src/sim/CMakeFiles/blameit_sim.dir/rtt_model.cc.o.d"
  "/root/repo/src/sim/scenario.cc" "src/sim/CMakeFiles/blameit_sim.dir/scenario.cc.o" "gcc" "src/sim/CMakeFiles/blameit_sim.dir/scenario.cc.o.d"
  "/root/repo/src/sim/telemetry.cc" "src/sim/CMakeFiles/blameit_sim.dir/telemetry.cc.o" "gcc" "src/sim/CMakeFiles/blameit_sim.dir/telemetry.cc.o.d"
  "/root/repo/src/sim/traceroute.cc" "src/sim/CMakeFiles/blameit_sim.dir/traceroute.cc.o" "gcc" "src/sim/CMakeFiles/blameit_sim.dir/traceroute.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/analysis/CMakeFiles/blameit_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/blameit_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/blameit_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
