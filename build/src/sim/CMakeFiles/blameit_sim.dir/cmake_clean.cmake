file(REMOVE_RECURSE
  "CMakeFiles/blameit_sim.dir/fault.cc.o"
  "CMakeFiles/blameit_sim.dir/fault.cc.o.d"
  "CMakeFiles/blameit_sim.dir/population.cc.o"
  "CMakeFiles/blameit_sim.dir/population.cc.o.d"
  "CMakeFiles/blameit_sim.dir/rtt_model.cc.o"
  "CMakeFiles/blameit_sim.dir/rtt_model.cc.o.d"
  "CMakeFiles/blameit_sim.dir/scenario.cc.o"
  "CMakeFiles/blameit_sim.dir/scenario.cc.o.d"
  "CMakeFiles/blameit_sim.dir/telemetry.cc.o"
  "CMakeFiles/blameit_sim.dir/telemetry.cc.o.d"
  "CMakeFiles/blameit_sim.dir/traceroute.cc.o"
  "CMakeFiles/blameit_sim.dir/traceroute.cc.o.d"
  "libblameit_sim.a"
  "libblameit_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/blameit_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
