file(REMOVE_RECURSE
  "libblameit_sim.a"
)
