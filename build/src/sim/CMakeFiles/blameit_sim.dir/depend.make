# Empty dependencies file for blameit_sim.
# This may be replaced when dependencies are built.
