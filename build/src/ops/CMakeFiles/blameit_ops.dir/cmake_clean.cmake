file(REMOVE_RECURSE
  "CMakeFiles/blameit_ops.dir/alert.cc.o"
  "CMakeFiles/blameit_ops.dir/alert.cc.o.d"
  "CMakeFiles/blameit_ops.dir/report.cc.o"
  "CMakeFiles/blameit_ops.dir/report.cc.o.d"
  "libblameit_ops.a"
  "libblameit_ops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/blameit_ops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
