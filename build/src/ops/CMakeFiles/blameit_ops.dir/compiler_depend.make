# Empty compiler generated dependencies file for blameit_ops.
# This may be replaced when dependencies are built.
