file(REMOVE_RECURSE
  "libblameit_ops.a"
)
