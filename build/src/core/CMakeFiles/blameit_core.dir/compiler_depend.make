# Empty compiler generated dependencies file for blameit_core.
# This may be replaced when dependencies are built.
