file(REMOVE_RECURSE
  "CMakeFiles/blameit_core.dir/active.cc.o"
  "CMakeFiles/blameit_core.dir/active.cc.o.d"
  "CMakeFiles/blameit_core.dir/background.cc.o"
  "CMakeFiles/blameit_core.dir/background.cc.o.d"
  "CMakeFiles/blameit_core.dir/passive.cc.o"
  "CMakeFiles/blameit_core.dir/passive.cc.o.d"
  "CMakeFiles/blameit_core.dir/pipeline.cc.o"
  "CMakeFiles/blameit_core.dir/pipeline.cc.o.d"
  "CMakeFiles/blameit_core.dir/predictors.cc.o"
  "CMakeFiles/blameit_core.dir/predictors.cc.o.d"
  "CMakeFiles/blameit_core.dir/prioritizer.cc.o"
  "CMakeFiles/blameit_core.dir/prioritizer.cc.o.d"
  "CMakeFiles/blameit_core.dir/reverse.cc.o"
  "CMakeFiles/blameit_core.dir/reverse.cc.o.d"
  "libblameit_core.a"
  "libblameit_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/blameit_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
