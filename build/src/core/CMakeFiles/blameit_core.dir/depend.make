# Empty dependencies file for blameit_core.
# This may be replaced when dependencies are built.
