file(REMOVE_RECURSE
  "libblameit_core.a"
)
