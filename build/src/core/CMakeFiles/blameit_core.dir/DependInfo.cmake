
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/active.cc" "src/core/CMakeFiles/blameit_core.dir/active.cc.o" "gcc" "src/core/CMakeFiles/blameit_core.dir/active.cc.o.d"
  "/root/repo/src/core/background.cc" "src/core/CMakeFiles/blameit_core.dir/background.cc.o" "gcc" "src/core/CMakeFiles/blameit_core.dir/background.cc.o.d"
  "/root/repo/src/core/passive.cc" "src/core/CMakeFiles/blameit_core.dir/passive.cc.o" "gcc" "src/core/CMakeFiles/blameit_core.dir/passive.cc.o.d"
  "/root/repo/src/core/pipeline.cc" "src/core/CMakeFiles/blameit_core.dir/pipeline.cc.o" "gcc" "src/core/CMakeFiles/blameit_core.dir/pipeline.cc.o.d"
  "/root/repo/src/core/predictors.cc" "src/core/CMakeFiles/blameit_core.dir/predictors.cc.o" "gcc" "src/core/CMakeFiles/blameit_core.dir/predictors.cc.o.d"
  "/root/repo/src/core/prioritizer.cc" "src/core/CMakeFiles/blameit_core.dir/prioritizer.cc.o" "gcc" "src/core/CMakeFiles/blameit_core.dir/prioritizer.cc.o.d"
  "/root/repo/src/core/reverse.cc" "src/core/CMakeFiles/blameit_core.dir/reverse.cc.o" "gcc" "src/core/CMakeFiles/blameit_core.dir/reverse.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/analysis/CMakeFiles/blameit_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/blameit_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/blameit_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/blameit_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
