file(REMOVE_RECURSE
  "libblameit_analysis.a"
)
