file(REMOVE_RECURSE
  "CMakeFiles/blameit_analysis.dir/expected_rtt.cc.o"
  "CMakeFiles/blameit_analysis.dir/expected_rtt.cc.o.d"
  "CMakeFiles/blameit_analysis.dir/impact.cc.o"
  "CMakeFiles/blameit_analysis.dir/impact.cc.o.d"
  "CMakeFiles/blameit_analysis.dir/quartet.cc.o"
  "CMakeFiles/blameit_analysis.dir/quartet.cc.o.d"
  "CMakeFiles/blameit_analysis.dir/record.cc.o"
  "CMakeFiles/blameit_analysis.dir/record.cc.o.d"
  "libblameit_analysis.a"
  "libblameit_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/blameit_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
