# Empty compiler generated dependencies file for blameit_analysis.
# This may be replaced when dependencies are built.
