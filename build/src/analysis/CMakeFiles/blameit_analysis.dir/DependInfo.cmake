
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/expected_rtt.cc" "src/analysis/CMakeFiles/blameit_analysis.dir/expected_rtt.cc.o" "gcc" "src/analysis/CMakeFiles/blameit_analysis.dir/expected_rtt.cc.o.d"
  "/root/repo/src/analysis/impact.cc" "src/analysis/CMakeFiles/blameit_analysis.dir/impact.cc.o" "gcc" "src/analysis/CMakeFiles/blameit_analysis.dir/impact.cc.o.d"
  "/root/repo/src/analysis/quartet.cc" "src/analysis/CMakeFiles/blameit_analysis.dir/quartet.cc.o" "gcc" "src/analysis/CMakeFiles/blameit_analysis.dir/quartet.cc.o.d"
  "/root/repo/src/analysis/record.cc" "src/analysis/CMakeFiles/blameit_analysis.dir/record.cc.o" "gcc" "src/analysis/CMakeFiles/blameit_analysis.dir/record.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/blameit_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/blameit_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
