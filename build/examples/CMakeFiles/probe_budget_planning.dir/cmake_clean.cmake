file(REMOVE_RECURSE
  "CMakeFiles/probe_budget_planning.dir/probe_budget_planning.cpp.o"
  "CMakeFiles/probe_budget_planning.dir/probe_budget_planning.cpp.o.d"
  "probe_budget_planning"
  "probe_budget_planning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/probe_budget_planning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
