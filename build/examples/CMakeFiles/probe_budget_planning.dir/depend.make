# Empty dependencies file for probe_budget_planning.
# This may be replaced when dependencies are built.
