file(REMOVE_RECURSE
  "CMakeFiles/incident_investigation.dir/incident_investigation.cpp.o"
  "CMakeFiles/incident_investigation.dir/incident_investigation.cpp.o.d"
  "incident_investigation"
  "incident_investigation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/incident_investigation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
