file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_middle_grouping.dir/bench_fig6_middle_grouping.cc.o"
  "CMakeFiles/bench_fig6_middle_grouping.dir/bench_fig6_middle_grouping.cc.o.d"
  "bench_fig6_middle_grouping"
  "bench_fig6_middle_grouping.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_middle_grouping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
