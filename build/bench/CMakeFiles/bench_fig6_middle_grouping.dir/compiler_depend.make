# Empty compiler generated dependencies file for bench_fig6_middle_grouping.
# This may be replaced when dependencies are built.
