# Empty dependencies file for bench_fig11_corroboration.
# This may be replaced when dependencies are built.
