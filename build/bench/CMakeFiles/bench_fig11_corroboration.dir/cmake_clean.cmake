file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_corroboration.dir/bench_fig11_corroboration.cc.o"
  "CMakeFiles/bench_fig11_corroboration.dir/bench_fig11_corroboration.cc.o.d"
  "bench_fig11_corroboration"
  "bench_fig11_corroboration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_corroboration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
