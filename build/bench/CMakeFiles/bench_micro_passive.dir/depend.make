# Empty dependencies file for bench_micro_passive.
# This may be replaced when dependencies are built.
