file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_passive.dir/bench_micro_passive.cc.o"
  "CMakeFiles/bench_micro_passive.dir/bench_micro_passive.cc.o.d"
  "bench_micro_passive"
  "bench_micro_passive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_passive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
