file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_duration_by_category.dir/bench_fig10_duration_by_category.cc.o"
  "CMakeFiles/bench_fig10_duration_by_category.dir/bench_fig10_duration_by_category.cc.o.d"
  "bench_fig10_duration_by_category"
  "bench_fig10_duration_by_category.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_duration_by_category.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
