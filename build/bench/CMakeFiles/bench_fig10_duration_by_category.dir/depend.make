# Empty dependencies file for bench_fig10_duration_by_category.
# This may be replaced when dependencies are built.
