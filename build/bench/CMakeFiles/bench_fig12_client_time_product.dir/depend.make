# Empty dependencies file for bench_fig12_client_time_product.
# This may be replaced when dependencies are built.
