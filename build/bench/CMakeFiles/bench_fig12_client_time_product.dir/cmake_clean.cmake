file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_client_time_product.dir/bench_fig12_client_time_product.cc.o"
  "CMakeFiles/bench_fig12_client_time_product.dir/bench_fig12_client_time_product.cc.o.d"
  "bench_fig12_client_time_product"
  "bench_fig12_client_time_product.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_client_time_product.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
