# Empty compiler generated dependencies file for bench_incidents88.
# This may be replaced when dependencies are built.
