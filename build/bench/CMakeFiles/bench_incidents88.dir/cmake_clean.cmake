file(REMOVE_RECURSE
  "CMakeFiles/bench_incidents88.dir/bench_incidents88.cc.o"
  "CMakeFiles/bench_incidents88.dir/bench_incidents88.cc.o.d"
  "bench_incidents88"
  "bench_incidents88.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_incidents88.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
