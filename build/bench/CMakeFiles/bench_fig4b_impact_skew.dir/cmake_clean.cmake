file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4b_impact_skew.dir/bench_fig4b_impact_skew.cc.o"
  "CMakeFiles/bench_fig4b_impact_skew.dir/bench_fig4b_impact_skew.cc.o.d"
  "bench_fig4b_impact_skew"
  "bench_fig4b_impact_skew.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4b_impact_skew.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
