# Empty compiler generated dependencies file for bench_fig4b_impact_skew.
# This may be replaced when dependencies are built.
