file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4a_persistence.dir/bench_fig4a_persistence.cc.o"
  "CMakeFiles/bench_fig4a_persistence.dir/bench_fig4a_persistence.cc.o.d"
  "bench_fig4a_persistence"
  "bench_fig4a_persistence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4a_persistence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
