# Empty compiler generated dependencies file for bench_fig9_blame_by_region.
# This may be replaced when dependencies are built.
