file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_blame_month.dir/bench_fig8_blame_month.cc.o"
  "CMakeFiles/bench_fig8_blame_month.dir/bench_fig8_blame_month.cc.o.d"
  "bench_fig8_blame_month"
  "bench_fig8_blame_month.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_blame_month.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
