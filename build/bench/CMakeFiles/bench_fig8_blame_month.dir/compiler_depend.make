# Empty compiler generated dependencies file for bench_fig8_blame_month.
# This may be replaced when dependencies are built.
