file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_expected_rtt.dir/bench_ablation_expected_rtt.cc.o"
  "CMakeFiles/bench_ablation_expected_rtt.dir/bench_ablation_expected_rtt.cc.o.d"
  "bench_ablation_expected_rtt"
  "bench_ablation_expected_rtt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_expected_rtt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
