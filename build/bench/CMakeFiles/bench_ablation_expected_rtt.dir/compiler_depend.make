# Empty compiler generated dependencies file for bench_ablation_expected_rtt.
# This may be replaced when dependencies are built.
