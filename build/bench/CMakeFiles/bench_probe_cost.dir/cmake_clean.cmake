file(REMOVE_RECURSE
  "CMakeFiles/bench_probe_cost.dir/bench_probe_cost.cc.o"
  "CMakeFiles/bench_probe_cost.dir/bench_probe_cost.cc.o.d"
  "bench_probe_cost"
  "bench_probe_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_probe_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
