# Empty dependencies file for bench_probe_cost.
# This may be replaced when dependencies are built.
