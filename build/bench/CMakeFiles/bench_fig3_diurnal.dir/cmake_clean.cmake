file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_diurnal.dir/bench_fig3_diurnal.cc.o"
  "CMakeFiles/bench_fig3_diurnal.dir/bench_fig3_diurnal.cc.o.d"
  "bench_fig3_diurnal"
  "bench_fig3_diurnal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_diurnal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
