# Empty dependencies file for bench_fig2_badness_by_region.
# This may be replaced when dependencies are built.
