# Empty dependencies file for sim_rtt_model_test.
# This may be replaced when dependencies are built.
