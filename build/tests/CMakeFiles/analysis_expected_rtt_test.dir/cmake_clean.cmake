file(REMOVE_RECURSE
  "CMakeFiles/analysis_expected_rtt_test.dir/analysis/expected_rtt_test.cc.o"
  "CMakeFiles/analysis_expected_rtt_test.dir/analysis/expected_rtt_test.cc.o.d"
  "analysis_expected_rtt_test"
  "analysis_expected_rtt_test.pdb"
  "analysis_expected_rtt_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analysis_expected_rtt_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
