# Empty dependencies file for analysis_expected_rtt_test.
# This may be replaced when dependencies are built.
