# Empty dependencies file for net_asn_test.
# This may be replaced when dependencies are built.
