file(REMOVE_RECURSE
  "CMakeFiles/net_asn_test.dir/net/asn_test.cc.o"
  "CMakeFiles/net_asn_test.dir/net/asn_test.cc.o.d"
  "net_asn_test"
  "net_asn_test.pdb"
  "net_asn_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/net_asn_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
