# Empty dependencies file for core_active_test.
# This may be replaced when dependencies are built.
