file(REMOVE_RECURSE
  "CMakeFiles/core_active_test.dir/core/active_test.cc.o"
  "CMakeFiles/core_active_test.dir/core/active_test.cc.o.d"
  "core_active_test"
  "core_active_test.pdb"
  "core_active_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_active_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
