file(REMOVE_RECURSE
  "CMakeFiles/core_predictors_test.dir/core/predictors_test.cc.o"
  "CMakeFiles/core_predictors_test.dir/core/predictors_test.cc.o.d"
  "core_predictors_test"
  "core_predictors_test.pdb"
  "core_predictors_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_predictors_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
