# Empty dependencies file for analysis_quartet_test.
# This may be replaced when dependencies are built.
