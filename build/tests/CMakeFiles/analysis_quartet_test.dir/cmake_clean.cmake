file(REMOVE_RECURSE
  "CMakeFiles/analysis_quartet_test.dir/analysis/quartet_test.cc.o"
  "CMakeFiles/analysis_quartet_test.dir/analysis/quartet_test.cc.o.d"
  "analysis_quartet_test"
  "analysis_quartet_test.pdb"
  "analysis_quartet_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analysis_quartet_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
