# Empty dependencies file for analysis_impact_test.
# This may be replaced when dependencies are built.
