file(REMOVE_RECURSE
  "CMakeFiles/analysis_impact_test.dir/analysis/impact_test.cc.o"
  "CMakeFiles/analysis_impact_test.dir/analysis/impact_test.cc.o.d"
  "analysis_impact_test"
  "analysis_impact_test.pdb"
  "analysis_impact_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analysis_impact_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
