file(REMOVE_RECURSE
  "CMakeFiles/analysis_record_test.dir/analysis/record_test.cc.o"
  "CMakeFiles/analysis_record_test.dir/analysis/record_test.cc.o.d"
  "analysis_record_test"
  "analysis_record_test.pdb"
  "analysis_record_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analysis_record_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
