# Empty compiler generated dependencies file for analysis_record_test.
# This may be replaced when dependencies are built.
