# Empty dependencies file for net_bgp_test.
# This may be replaced when dependencies are built.
