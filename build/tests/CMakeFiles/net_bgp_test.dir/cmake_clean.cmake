file(REMOVE_RECURSE
  "CMakeFiles/net_bgp_test.dir/net/bgp_test.cc.o"
  "CMakeFiles/net_bgp_test.dir/net/bgp_test.cc.o.d"
  "net_bgp_test"
  "net_bgp_test.pdb"
  "net_bgp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/net_bgp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
