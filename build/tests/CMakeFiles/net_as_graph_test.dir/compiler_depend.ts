# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for net_as_graph_test.
