file(REMOVE_RECURSE
  "CMakeFiles/net_as_graph_test.dir/net/as_graph_test.cc.o"
  "CMakeFiles/net_as_graph_test.dir/net/as_graph_test.cc.o.d"
  "net_as_graph_test"
  "net_as_graph_test.pdb"
  "net_as_graph_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/net_as_graph_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
