file(REMOVE_RECURSE
  "CMakeFiles/core_reverse_test.dir/core/reverse_test.cc.o"
  "CMakeFiles/core_reverse_test.dir/core/reverse_test.cc.o.d"
  "core_reverse_test"
  "core_reverse_test.pdb"
  "core_reverse_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_reverse_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
