# Empty dependencies file for core_reverse_test.
# This may be replaced when dependencies are built.
