# Empty compiler generated dependencies file for core_background_test.
# This may be replaced when dependencies are built.
