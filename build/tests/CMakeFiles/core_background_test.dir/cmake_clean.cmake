file(REMOVE_RECURSE
  "CMakeFiles/core_background_test.dir/core/background_test.cc.o"
  "CMakeFiles/core_background_test.dir/core/background_test.cc.o.d"
  "core_background_test"
  "core_background_test.pdb"
  "core_background_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_background_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
