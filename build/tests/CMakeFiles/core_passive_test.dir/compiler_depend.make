# Empty compiler generated dependencies file for core_passive_test.
# This may be replaced when dependencies are built.
