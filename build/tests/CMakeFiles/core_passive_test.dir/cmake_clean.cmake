file(REMOVE_RECURSE
  "CMakeFiles/core_passive_test.dir/core/passive_test.cc.o"
  "CMakeFiles/core_passive_test.dir/core/passive_test.cc.o.d"
  "core_passive_test"
  "core_passive_test.pdb"
  "core_passive_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_passive_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
