# Empty compiler generated dependencies file for sim_telemetry_test.
# This may be replaced when dependencies are built.
