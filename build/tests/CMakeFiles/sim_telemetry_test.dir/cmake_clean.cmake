file(REMOVE_RECURSE
  "CMakeFiles/sim_telemetry_test.dir/sim/telemetry_test.cc.o"
  "CMakeFiles/sim_telemetry_test.dir/sim/telemetry_test.cc.o.d"
  "sim_telemetry_test"
  "sim_telemetry_test.pdb"
  "sim_telemetry_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_telemetry_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
