# Empty dependencies file for sim_traceroute_test.
# This may be replaced when dependencies are built.
