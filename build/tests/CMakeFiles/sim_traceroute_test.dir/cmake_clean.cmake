file(REMOVE_RECURSE
  "CMakeFiles/sim_traceroute_test.dir/sim/traceroute_test.cc.o"
  "CMakeFiles/sim_traceroute_test.dir/sim/traceroute_test.cc.o.d"
  "sim_traceroute_test"
  "sim_traceroute_test.pdb"
  "sim_traceroute_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_traceroute_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
